/**
 * @file
 * 16-bit sign-magnitude fixed-point representation.
 *
 * The paper's NN accelerator (Table III, Fig 9) stores every weight as a
 * 16-bit word with a per-layer "minimum precision" split into sign, digit
 * (integer) and fraction fields. We use sign-magnitude rather than two's
 * complement: it is what makes small-magnitude weights mostly-"0" bit
 * patterns, which is the mechanism behind the paper's observation that
 * 76.3% of weight bits are "0" and therefore largely immune to the
 * dominant "1"->"0" undervolting flips.
 *
 * Word layout (bit 15 = MSB):
 *
 *   [15] sign | [14 .. 14-digit+1] digit | [fraction bits .. 0]
 *
 * digitBits + fracBits == 15 always; the sign occupies the MSB.
 */

#ifndef UVOLT_FXP_FIXED_POINT_HH
#define UVOLT_FXP_FIXED_POINT_HH

#include <cstdint>
#include <span>
#include <string>

namespace uvolt::fxp
{

/** Storage word for one fixed-point value. */
using Word = std::uint16_t;

/** Total bits per word, fixed at 16 by the accelerator datapath. */
constexpr int wordBits = 16;

/** Bit index of the sign bit. */
constexpr int signBit = 15;

/**
 * Per-layer fixed-point format: 1 sign bit, digitBits integer bits,
 * and (15 - digitBits) fraction bits.
 */
class QFormat
{
  public:
    /** @param digit_bits integer-field width in [0, 15]. */
    explicit QFormat(int digit_bits = 0);

    int digitBits() const { return digitBits_; }
    int fracBits() const { return fracBits_; }

    /** Largest representable magnitude: 2^digit - 2^-frac. */
    double maxMagnitude() const;

    /** Value of one LSB: 2^-frac. */
    double resolution() const;

    /** Quantize with round-to-nearest and saturation. */
    Word quantize(double value) const;

    /** Reconstruct the real value a word encodes. */
    double dequantize(Word word) const;

    /** "s1.d4.f11"-style description used in Fig 9 reports. */
    std::string describe() const;

    bool operator==(const QFormat &other) const = default;

  private:
    int digitBits_;
    int fracBits_;
};

/**
 * Minimum digit-field width needed to represent the magnitude without
 * saturation (the paper's per-layer minimum-precision analysis, Fig 9).
 * Values inside (-1, 1) need zero digit bits.
 */
int minDigitBits(double max_abs_value);

/** Read one bit of a word (bit 0 = LSB). */
inline bool
getBit(Word word, int bit)
{
    return (word >> bit) & 1u;
}

/** Set or clear one bit of a word. */
inline Word
withBit(Word word, int bit, bool value)
{
    const Word mask = static_cast<Word>(1u << bit);
    return value ? static_cast<Word>(word | mask)
                 : static_cast<Word>(word & ~mask);
}

/** Number of "1" bits in a word. */
int popcount(Word word);

/** Number of "1" bits across a span of words. */
std::uint64_t popcount(std::span<const Word> words);

/**
 * Fraction of "0" bits across a span of words; the paper measures this
 * weight-bit sparsity at 76.3% for its trained MNIST network.
 */
double zeroBitFraction(std::span<const Word> words);

} // namespace uvolt::fxp

#endif // UVOLT_FXP_FIXED_POINT_HH

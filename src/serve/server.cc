#include "serve/server.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "fpga/floorplan.hh"
#include "fpga/platform.hh"
#include "harness/checkpoint.hh"
#include "harness/fvm.hh"
#include "harness/ledger.hh"
#include "util/flight_recorder.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/telemetry.hh"

namespace uvolt::serve
{

namespace
{

/**
 * Latency bucket ladder reaching @a ceiling_ms. The old fixed ladder
 * topped out at 5000 ms, which a long characterize (full sweep, high
 * runs-per-level) blows straight past — every such request landed in
 * the overflow bucket and HistogramSnapshot::quantile() saturated at
 * 5000, silently under-reporting p99. The ladder now extends in rough
 * half-decade steps to the configured ceiling (default 600 s), still
 * inside the registry's 24-bound budget.
 */
std::vector<double>
latencyBoundsMs(double ceiling_ms)
{
    std::vector<double> bounds{0.05, 0.1, 0.5,  1,   2,    5,    10,
                               20,   50,  100,  200, 500,  1000, 2000,
                               5000, 1e4, 3e4,  6e4, 12e4, 30e4};
    while (!bounds.empty() && bounds.back() > ceiling_ms)
        bounds.pop_back();
    if (bounds.empty() || bounds.back() < ceiling_ms)
        bounds.push_back(ceiling_ms);
    return bounds;
}

struct ServeMetrics
{
    telemetry::Counter &admitted =
        telemetry::Registry::global().counter("serve.admitted");
    telemetry::Counter &rejected =
        telemetry::Registry::global().counter("serve.rejected");
    telemetry::Counter &degraded =
        telemetry::Registry::global().counter("serve.degraded");
    telemetry::Counter &deadlineExceeded =
        telemetry::Registry::global().counter("serve.deadline_exceeded");
    telemetry::Counter &retried =
        telemetry::Registry::global().counter("serve.retried");
    telemetry::Counter &completed =
        telemetry::Registry::global().counter("serve.completed");
    telemetry::Counter &failed =
        telemetry::Registry::global().counter("serve.failed");
    telemetry::Counter &cancelled =
        telemetry::Registry::global().counter("serve.cancelled");
    telemetry::Counter &coalescedBlocks = telemetry::Registry::global()
        .counter("serve.coalesced_blocks");
    telemetry::Counter &resumes =
        telemetry::Registry::global().counter("serve.resumes");
    telemetry::Gauge &queueDepth =
        telemetry::Registry::global().gauge("serve.queue_depth");
    telemetry::Histogram &queueWaitMs =
        telemetry::Registry::global().histogram(
            "serve.queue_wait_ms", latencyBoundsMs(6e5));
    telemetry::Histogram &e2eMs =
        telemetry::Registry::global().histogram("serve.e2e_ms",
                                                latencyBoundsMs(6e5));
    telemetry::Histogram &characterizeMs =
        telemetry::Registry::global().histogram(
            "serve.characterize_ms", latencyBoundsMs(6e5));
    telemetry::Histogram &classifyMs =
        telemetry::Registry::global().histogram(
            "serve.classify_ms", latencyBoundsMs(6e5));
};

ServeMetrics &
serveMetrics()
{
    static ServeMetrics metrics;
    return metrics;
}

/** Fault classes a backoff-and-retry can plausibly clear. */
bool
transientErrc(Errc code)
{
    switch (code) {
      case Errc::crashDetected:
      case Errc::linkExhausted:
      case Errc::pmbusExhausted:
      case Errc::verifyExhausted:
      case Errc::recoveryExhausted:
      case Errc::badCheckpoint:
        return true;
      default:
        return false;
    }
}

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** Canonical request description the per-request seed digests. */
std::string
canonicalCharacterize(const CharacterizeRequest &request)
{
    return strFormat("characterize;{};{};t{:.1f};runs={}",
                     request.platform, request.pattern.label(),
                     request.ambientC, request.runsPerLevel);
}

/** End-to-end latency into both the shared and the per-class series. */
void
observeE2e(const char *kind, double e2e_ms)
{
    serveMetrics().e2eMs.observe(e2e_ms);
    if (std::string_view(kind) == "characterize")
        serveMetrics().characterizeMs.observe(e2e_ms);
    else
        serveMetrics().classifyMs.observe(e2e_ms);
}

/**
 * One per-request trace span covering queue wait + execution. With an
 * active context this is the request flow's terminal point — in
 * Perfetto the arrow chain admission -> queue wait -> execution ends
 * here, whatever thread each hop ran on.
 */
void
recordRequestSpan(const char *kind, std::uint64_t id,
                  const telemetry::TraceContext &ctx, double e2e_ms,
                  bool ok)
{
    if (!telemetry::Telemetry::enabled())
        return;
    auto &registry = telemetry::Registry::global();
    const auto duration =
        static_cast<std::uint64_t>(std::max(0.0, e2e_ms) * 1e6);
    const std::uint64_t end = registry.nowNs();
    const std::uint64_t start = end > duration ? end - duration : 0;
    telemetry::TraceArgs args{{"kind", kind},
                              {"id", std::to_string(id)},
                              {"ok", ok ? "1" : "0"}};
    if (ctx.active()) {
        registry.recordFlowSpan("serve.request", start, duration, ctx,
                                telemetry::FlowPoint::finish,
                                std::move(args));
    } else {
        registry.recordSpan("serve.request", start, duration,
                            std::move(args));
    }
}

} // namespace

UvoltServer::UvoltServer(ServerConfig config)
    : config_(std::move(config)), queue_(std::max<std::size_t>(
          1, config_.queueCapacity)),
      health_(config_.health)
{
    if (config_.workers == 0)
        fatal("UvoltServer needs at least one worker");
    config_.maxAttempts = std::max(1, config_.maxAttempts);
    config_.sliceLevels = std::max(1, config_.sliceLevels);
    workers_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i) {
        workers_.emplace_back(
            [this, name = strFormat("serve-worker-{}", i)]() mutable {
                telemetry::setCurrentThreadName(std::move(name));
                workerLoop();
            });
    }
}

UvoltServer::~UvoltServer()
{
    stop(StopMode::now);
}

template <typename Request, typename Response>
Expected<std::future<Expected<Response>>>
UvoltServer::admit(Request request)
{
    if (!accepting_.load(std::memory_order_relaxed)) {
        return makeError(Errc::serverStopped,
                         "server is draining or stopped");
    }
    if (request.priority == Priority::low) {
        std::unique_lock lock(healthMutex_);
        if (health_.sheddingLowPriority()) {
            lock.unlock();
            {
                std::unique_lock stats(statsMutex_);
                ++stats_.shed;
            }
            serveMetrics().degraded.increment();
            return makeError(Errc::loadShed,
                             "degraded: shedding low-priority work");
        }
    }

    Pending pending;
    pending.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    pending.priority = request.priority;
    pending.submitted = Clock::now();
    pending.deadline =
        request.deadlineMs > 0.0
            ? pending.submitted +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          request.deadlineMs))
            : Clock::time_point::max();

    using Work = std::conditional_t<
        std::is_same_v<Response, CharacterizeResponse>,
        CharacterizeWork, ClassifyWork>;
    Work work;
    work.request = std::move(request);
    auto future = work.promise.get_future();
    pending.work = std::move(work);

    // Mint the request's trace flow before the push: the admission span
    // must exist before any worker can pop the item and parent spans
    // under it. The span id travels in the queue item; every later hop
    // (queue wait, execution, terminal response) joins this flow.
    if (telemetry::Telemetry::enabled()) {
        pending.submitNs = telemetry::nowNs();
        pending.trace.flowId = telemetry::mintFlowId();
        pending.trace.spanId = telemetry::recordFlowSpan(
            "serve.admit", pending.submitNs, 0,
            telemetry::TraceContext{pending.trace.flowId, 0},
            telemetry::FlowPoint::start,
            {{"kind", std::is_same_v<Response, CharacterizeResponse>
                          ? "characterize"
                          : "classify"},
             {"id", std::to_string(pending.id)}});
    }
    const telemetry::TraceContext trace = pending.trace;

    // Counted before the push: a worker may pop and respond before this
    // thread runs another instruction, and the drain predicate must
    // never observe a response without its admission.
    unresponded_.fetch_add(1, std::memory_order_acq_rel);
    if (auto pushed = queue_.tryPush(std::move(pending));
        !pushed.ok()) {
        unresponded_.fetch_sub(1, std::memory_order_acq_rel);
        if (pushed.error().code == Errc::queueFull) {
            {
                std::unique_lock stats(statsMutex_);
                ++stats_.rejected;
            }
            serveMetrics().rejected.increment();
        }
        // Close the flow so every minted flow stays well-formed (one
        // start, one finish) even for refused work.
        if (trace.active()) {
            telemetry::recordFlowSpan(
                "serve.reject", telemetry::nowNs(), 0, trace,
                telemetry::FlowPoint::finish,
                {{"why", pushed.error().code == Errc::queueFull
                             ? "queue_full"
                             : "stopped"}});
        }
        return pushed.error();
    }
    {
        std::unique_lock stats(statsMutex_);
        ++stats_.admitted;
    }
    serveMetrics().admitted.increment();
    serveMetrics().queueDepth.set(
        static_cast<double>(queue_.size()));
    return future;
}

Expected<std::future<Expected<CharacterizeResponse>>>
UvoltServer::submitCharacterize(CharacterizeRequest request)
{
    if (request.runsPerLevel <= 0)
        fatal("submitCharacterize: runsPerLevel must be positive");
    return admit<CharacterizeRequest, CharacterizeResponse>(
        std::move(request));
}

Expected<std::future<Expected<ClassifyResponse>>>
UvoltServer::submitClassify(ClassifyRequest request)
{
    if (request.sampleCount == 0 ||
        request.samples.size() % request.sampleCount != 0) {
        fatal("submitClassify: {} sample values do not divide into {} "
              "samples",
              request.samples.size(), request.sampleCount);
    }
    if (!config_.modelProvider)
        fatal("submitClassify: server has no model provider");
    return admit<ClassifyRequest, ClassifyResponse>(std::move(request));
}

void
UvoltServer::drain()
{
    accepting_.store(false, std::memory_order_relaxed);
    std::unique_lock lock(drainMutex_);
    drainCv_.wait(lock, [this] {
        return unresponded_.load(std::memory_order_acquire) == 0;
    });
}

void
UvoltServer::settled()
{
    if (unresponded_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::unique_lock lock(drainMutex_);
        drainCv_.notify_all();
    }
}

void
UvoltServer::stop(StopMode mode)
{
    std::unique_lock stop_lock(stopMutex_);
    if (joined_.load(std::memory_order_relaxed))
        return;
    accepting_.store(false, std::memory_order_relaxed);
    if (mode == StopMode::drain)
        drain();
    else
        stopNow_.store(true, std::memory_order_relaxed);
    // Workers drain what is left: with stopNow_ set, every remaining
    // item is answered serverStopped (checkpoints stay on disk for the
    // next server); in drain mode the queue is already empty.
    queue_.close();
    for (auto &worker : workers_)
        worker.join();
    joined_.store(true, std::memory_order_relaxed);
}

ServerStats
UvoltServer::stats() const
{
    std::unique_lock lock(statsMutex_);
    return stats_;
}

void
UvoltServer::observeFaultPressure(double pressure)
{
    ServeState before;
    ServeState after;
    int raise = 0;
    {
        std::unique_lock lock(healthMutex_);
        before = health_.state();
        health_.observe(pressure);
        after = health_.state();
        raise = health_.floorRaiseMv();
    }
    if (after == before)
        return;
    // Record and dump outside healthMutex_: the recorder takes its own
    // locks and a dump writes a file — no reader of healthState() /
    // statusReport() should ever wait behind that.
    flightrec::note(after == ServeState::degraded
                        ? flightrec::Level::error
                        : flightrec::Level::info,
                    "serve",
                    strFormat("health {} -> {} (floor raise {} mV)",
                              serveStateName(before),
                              serveStateName(after), raise));
    if (after == ServeState::degraded && !config_.blackboxDir.empty()) {
        const std::string path =
            flightrec::FlightRecorder::global().dump(
                "degraded", config_.blackboxDir);
        if (!path.empty()) {
            warnc("serve",
                  "entered degraded state: flight recorder dumped to {}",
                  path);
        }
    }
}

ServeState
UvoltServer::healthState() const
{
    std::unique_lock lock(healthMutex_);
    return health_.state();
}

int
UvoltServer::floorRaiseMv() const
{
    std::unique_lock lock(healthMutex_);
    return health_.floorRaiseMv();
}

std::vector<HealthTransition>
UvoltServer::healthTransitions() const
{
    std::unique_lock lock(healthMutex_);
    return health_.transitions();
}

StatusReport
UvoltServer::statusReport() const
{
    StatusReport report;
    {
        std::unique_lock lock(healthMutex_);
        report.state = health_.state();
        report.floorRaiseMv = health_.floorRaiseMv();
    }
    report.queueDepth = queue_.size();
    report.queueCapacity = config_.queueCapacity;
    {
        std::unique_lock lock(statsMutex_);
        report.stats = stats_;
    }
    if (telemetry::Telemetry::enabled()) {
        const telemetry::MetricsSnapshot snapshot =
            telemetry::Registry::global().metrics();
        for (const auto &histogram : snapshot.histograms) {
            if (histogram.name == "serve.queue_wait_ms") {
                report.queueWaitP50Ms = histogram.p50();
                report.queueWaitP99Ms = histogram.p99();
            } else if (histogram.name == "serve.e2e_ms") {
                report.e2eP50Ms = histogram.p50();
                report.e2eP99Ms = histogram.p99();
            } else if (histogram.name == "serve.characterize_ms") {
                report.characterizeP50Ms = histogram.p50();
                report.characterizeP99Ms = histogram.p99();
            } else if (histogram.name == "serve.classify_ms") {
                report.classifyP50Ms = histogram.p50();
                report.classifyP99Ms = histogram.p99();
            }
        }
    }
    const std::uint64_t responded =
        report.stats.completed + report.stats.failed;
    if (responded > 0 && config_.errorBudget > 0.0) {
        report.errorBudgetBurn =
            (static_cast<double>(report.stats.failed) /
             static_cast<double>(responded)) /
            config_.errorBudget;
    }
    // Where is wall time going right now: the process-wide sampling
    // profiler's top frames, when a binary started one (serve_demo
    // --watch, ext_serve --profile). Reading a snapshot never perturbs
    // request handling — the sampler only observes span stacks.
    if (profiler::SpanProfiler::global().running()) {
        const profiler::Profile profile =
            profiler::SpanProfiler::global().snapshot();
        report.profileSamples = profile.samples;
        report.hotFrames = profile.topFrames(5);
    }
    return report;
}

std::string
StatusReport::render() const
{
    std::string out;
    out += strFormat("state           {} (floor raise {} mV)\n",
                     serveStateName(state), floorRaiseMv);
    out += strFormat("queue           {}/{}\n", queueDepth,
                     queueCapacity);
    out += strFormat("admitted        {}  completed {}  failed {}\n",
                     stats.admitted, stats.completed, stats.failed);
    out += strFormat("refused         rejected {}  shed {}  "
                     "cancelled {}\n",
                     stats.rejected, stats.shed, stats.cancelled);
    out += strFormat("pressure        deadline misses {}  retries {}  "
                     "coalesced blocks {}\n",
                     stats.deadlineExceeded, stats.retried,
                     stats.coalescedBlocks);
    out += strFormat("queue wait      p50 {:.3f} ms  p99 {:.3f} ms\n",
                     queueWaitP50Ms, queueWaitP99Ms);
    out += strFormat("end-to-end      p50 {:.3f} ms  p99 {:.3f} ms\n",
                     e2eP50Ms, e2eP99Ms);
    out += strFormat("  characterize  p50 {:.3f} ms  p99 {:.3f} ms\n",
                     characterizeP50Ms, characterizeP99Ms);
    out += strFormat("  classify      p50 {:.3f} ms  p99 {:.3f} ms\n",
                     classifyP50Ms, classifyP99Ms);
    out += strFormat("error budget    {:.1f}% burned\n",
                     errorBudgetBurn * 100.0);
    if (!hotFrames.empty()) {
        out += strFormat("hot frames      ({} samples; self% / total%)\n",
                         profileSamples);
        const double denom =
            profileSamples ? static_cast<double>(profileSamples) : 1.0;
        for (const auto &frame : hotFrames) {
            std::string name = frame.name;
            if (name.size() < 24)
                name.append(24 - name.size(), ' ');
            out += strFormat("  {} {:.1f}% / {:.1f}%  ({}/{})\n", name,
                             100.0 * static_cast<double>(frame.self) /
                                 denom,
                             100.0 * static_cast<double>(frame.total) /
                                 denom,
                             frame.self, frame.total);
        }
    }
    return out;
}

void
UvoltServer::workerLoop()
{
    while (auto item = queue_.pop()) {
        serveMetrics().queueDepth.set(
            static_cast<double>(queue_.size()));
        process(std::move(*item));
    }
}

void
UvoltServer::respondExpired(Pending &item)
{
    auto error = makeError(Errc::deadlineExceeded,
                           "request {} exceeded its deadline", item.id);
    {
        std::unique_lock lock(statsMutex_);
        ++stats_.failed;
        ++stats_.deadlineExceeded;
    }
    serveMetrics().failed.increment();
    serveMetrics().deadlineExceeded.increment();
    noteCompleted(item, false, Errc::deadlineExceeded);
    std::visit(
        [&](auto &work) { work.promise.set_value(std::move(error)); },
        item.work);
    settled();
}

void
UvoltServer::respondStopped(Pending &item)
{
    auto error = makeError(Errc::serverStopped,
                           "request {} cancelled by server stop",
                           item.id);
    {
        std::unique_lock lock(statsMutex_);
        ++stats_.failed;
        ++stats_.cancelled;
    }
    serveMetrics().failed.increment();
    serveMetrics().cancelled.increment();
    noteCompleted(item, false, Errc::serverStopped);
    std::visit(
        [&](auto &work) { work.promise.set_value(std::move(error)); },
        item.work);
    settled();
}

void
UvoltServer::noteCompleted(const Pending &item, bool ok, Errc code)
{
    const char *kind =
        std::holds_alternative<CharacterizeWork>(item.work)
            ? "characterize"
            : "classify";
    const double e2e = elapsedMs(item.submitted);
    observeE2e(kind, e2e);
    recordRequestSpan(kind, item.id, item.trace, e2e, ok);
    if (ok) {
        // Any completion ends a deadline storm: expiries only count
        // toward the dump threshold while nothing gets through.
        deadlineStreak_.store(0, std::memory_order_relaxed);
        return;
    }
    flightrec::note(flightrec::Level::warn, "serve",
                    strFormat("{} request {} failed: {}", kind, item.id,
                              errcName(code)),
                    item.trace.flowId);
    if (code == Errc::deadlineExceeded)
        noteDeadlineExpiry();
}

void
UvoltServer::noteDeadlineExpiry()
{
    const int threshold = config_.deadlineStormThreshold;
    if (threshold <= 0)
        return;
    const int streak =
        deadlineStreak_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (streak < threshold)
        return;
    deadlineStreak_.store(0, std::memory_order_relaxed);
    if (config_.blackboxDir.empty())
        return;
    flightrec::note(
        flightrec::Level::error, "serve",
        strFormat("{} consecutive deadline expiries", streak));
    const std::string path = flightrec::FlightRecorder::global().dump(
        "deadline_storm", config_.blackboxDir);
    if (!path.empty()) {
        warnc("serve", "deadline storm ({} expiries): flight recorder "
              "dumped to {}",
              streak, path);
    }
}

void
UvoltServer::process(Pending item)
{
    serveMetrics().queueWaitMs.observe(elapsedMs(item.submitted));
    // The queue-wait hop of the request flow: starts at admission time
    // on the submitter's thread, ends now on this worker — in Perfetto
    // the flow arrow crosses threads through this slice.
    if (item.trace.active()) {
        const std::uint64_t now = telemetry::nowNs();
        telemetry::recordFlowSpan(
            "serve.queue_wait", item.submitNs,
            now > item.submitNs ? now - item.submitNs : 0, item.trace,
            telemetry::FlowPoint::step,
            {{"id", std::to_string(item.id)}});
    }
    // Everything this worker does for the request — sweep slices,
    // retries, checkpoint writes — parents under the request context.
    telemetry::ContextScope trace_scope(item.trace);
    if (stopRequested()) {
        respondStopped(item);
        return;
    }
    if (Clock::now() > item.deadline) {
        respondExpired(item);
        return;
    }
    if (std::holds_alternative<CharacterizeWork>(item.work)) {
        finishCharacterize(item);
        return;
    }

    // Coalesce: drain further classify requests for the same operating
    // point off the queue head until one block is full. FIFO order is
    // preserved — only the head is ever considered.
    const auto &request = std::get<ClassifyWork>(item.work).request;
    const int setpoint = request.setpointMv;
    const std::size_t width = static_cast<std::size_t>(
        config_.coalesceBatch > 0 ? config_.coalesceBatch
                                  : nn::defaultEvalBatch());
    std::vector<Pending> group;
    std::size_t samples = request.sampleCount;
    group.push_back(std::move(item));
    while (samples < width && !stopRequested()) {
        auto more = queue_.tryPopMatching([&](const Pending &next) {
            const auto *work = std::get_if<ClassifyWork>(&next.work);
            return work && work->request.setpointMv == setpoint;
        });
        if (!more)
            break;
        samples += std::get<ClassifyWork>(more->work).request.sampleCount;
        serveMetrics().queueWaitMs.observe(elapsedMs(more->submitted));
        if (more->trace.active()) {
            const std::uint64_t now = telemetry::nowNs();
            telemetry::recordFlowSpan(
                "serve.queue_wait", more->submitNs,
                now > more->submitNs ? now - more->submitNs : 0,
                more->trace, telemetry::FlowPoint::step,
                {{"id", std::to_string(more->id)},
                 {"coalesced", "1"}});
        }
        group.push_back(std::move(*more));
    }
    serveMetrics().queueDepth.set(static_cast<double>(queue_.size()));
    finishClassifyGroup(std::move(group));
}

Expected<CharacterizeResponse>
UvoltServer::characterizeMemOnce(const CharacterizeRequest &request,
                                 std::uint64_t request_seed,
                                 Clock::time_point deadline)
{
    auto device = mem::makeDevice(request.platform);
    harness::fillMemPattern(*device, request.pattern);

    mem::MemSweepOptions options;
    options.runsPerLevel = request.runsPerLevel;
    options.ambientC = request.ambientC;
    options.collectPerDomain = true;
    options.seed = request_seed;

    // Same slice-boundary cancellation points as the BRAM path, but no
    // checkpoint file: the stateless per-(level, run) jitter stream
    // means a re-run re-measures skipped levels bit-identically.
    mem::MemSweepResult merged;
    std::optional<int> resume;
    for (;;) {
        if (stopRequested()) {
            return makeError(Errc::serverStopped,
                             "characterize cancelled at slice boundary");
        }
        if (Clock::now() > deadline) {
            return makeError(Errc::deadlineExceeded,
                             "characterize deadline passed at slice "
                             "boundary");
        }
        mem::MemSweepOptions slice = options;
        if (config_.sliceLevels > 0)
            slice.maxLevels = config_.sliceLevels;
        slice.resumeFromMv = resume;
        mem::MemSweepResult part = mem::runMemSweep(*device, slice);
        if (merged.points.empty()) {
            merged = part;
        } else {
            merged.points.insert(merged.points.end(),
                                 part.points.begin(),
                                 part.points.end());
            merged.truncated = part.truncated;
        }
        if (!merged.truncated)
            break;
        resume = merged.points.back().railMv;
    }

    CharacterizeResponse response;
    response.sweep = harness::sweepFromMem(merged, request.pattern);
    return response;
}

Expected<CharacterizeResponse>
UvoltServer::characterizeOnce(const CharacterizeRequest &request,
                              std::uint64_t request_seed, int attempt,
                              Clock::time_point deadline, bool &resumed)
{
    if (mem::technologyOfName(request.platform) != mem::Technology::bram)
        return characterizeMemOnce(request, request_seed, deadline);
    const fpga::PlatformSpec &spec = fpga::findPlatform(request.platform);
    auto model = pmbus::sharedChipModel(spec);
    pmbus::Board board(spec, model);
    board.setAmbientC(request.ambientC);
    if (config_.noise) {
        // Idempotent by construction: the injector stream is a pure
        // function of the request's own content digest, re-seeded per
        // attempt exactly as the fleet engine does, so a retry (or a
        // resubmission after restart) faces a reproducible environment.
        pmbus::NoiseConfig noise = *config_.noise;
        noise.seed = request_seed +
                     static_cast<std::uint64_t>(attempt - 1) * 1000003ull;
        board.attachNoise(noise);
    }

    harness::SweepOptions options;
    options.pattern = request.pattern;
    options.runsPerLevel = request.runsPerLevel;
    options.collectPerBram = true;
    options.recovery = config_.recovery;

    // The in-memory checkpoint is what carries progress from one slice
    // to the next; it is always wired. The on-disk serialization (and
    // with it resume-after-restart) is what checkpointDir adds.
    harness::SweepCheckpoint checkpoint;
    options.checkpoint = &checkpoint;
    std::string ckpt_path;
    if (!config_.checkpointDir.empty()) {
        const harness::FleetJob shape{request.platform, request.pattern,
                                      request.ambientC, std::nullopt};
        ckpt_path = strFormat("{}/{}-r{}.ckpt", config_.checkpointDir,
                              shape.label(), request.runsPerLevel);
        options.checkpointPath = ckpt_path;
        if (std::filesystem::exists(ckpt_path)) {
            auto loaded = harness::loadCheckpointFile(ckpt_path);
            if (loaded.ok())
                checkpoint = loaded.take();
            else
                warnc("serve", "ignoring unusable checkpoint '{}': {}",
                     ckpt_path, loaded.error().message);
        }
    }
    if (checkpoint.valid) {
        resumed = true;
        serveMetrics().resumes.increment();
    }

    // Time-sliced execution: at most sliceLevels voltage levels per
    // tryRunCriticalSweep call, with the checkpoint flushed after every
    // level — the cooperative cancellation points for deadlines and
    // stop. A cancelled campaign leaves its checkpoint on disk, so the
    // same request shape resumes bit-identically later.
    for (;;) {
        if (stopRequested()) {
            return makeError(Errc::serverStopped,
                             "characterize cancelled at slice boundary "
                             "(checkpoint flushed)");
        }
        if (Clock::now() > deadline) {
            return makeError(Errc::deadlineExceeded,
                             "characterize deadline passed at slice "
                             "boundary (checkpoint flushed)");
        }
        harness::SweepOptions slice = options;
        slice.maxLevels = config_.sliceLevels;
        auto result = harness::tryRunCriticalSweep(board, slice);
        if (!result.ok())
            return result.error();
        if (!result.value().truncated) {
            CharacterizeResponse response;
            response.sweep = result.take();
            if (!ckpt_path.empty()) {
                std::error_code ec;
                std::filesystem::remove(ckpt_path, ec);
            }
            return response;
        }
    }
}

void
UvoltServer::finishCharacterize(Pending &item)
{
    auto &work = std::get<CharacterizeWork>(item.work);
    const CharacterizeRequest &request = work.request;
    const std::uint64_t request_seed = combineSeeds(
        config_.seed,
        hashSeed(harness::configDigest(canonicalCharacterize(request))));

    // Serialize identical request shapes: they share a checkpoint file
    // (that is what makes restart resume work), so two tenants asking
    // for the same die+shape take turns instead of racing the file.
    std::shared_ptr<std::mutex> label_lock;
    {
        const std::string canonical = canonicalCharacterize(request);
        std::unique_lock lock(labelsMutex_);
        auto &slot = labelLocks_[canonical];
        if (!slot)
            slot = std::make_shared<std::mutex>();
        label_lock = slot;
    }
    std::unique_lock serialized(*label_lock);

    bool resumed = false;
    Error last = makeError(Errc::recoveryExhausted,
                           "characterize {} never ran", item.id);
    for (int attempt = 1; attempt <= config_.maxAttempts; ++attempt) {
        if (stopRequested()) {
            respondStopped(item);
            return;
        }
        UVOLT_TRACE_SCOPE("serve.attempt", [&] {
            return telemetry::TraceArgs{
                {"id", std::to_string(item.id)},
                {"attempt", std::to_string(attempt)}};
        });
        auto result = characterizeOnce(request, request_seed, attempt,
                                       item.deadline, resumed);
        if (result.ok()) {
            CharacterizeResponse response = result.take();
            response.attempts = attempt;
            response.resumed = resumed;

            if (config_.fvmCache) {
                // Backend-generic publication: the traits carry the
                // domain grid for any technology, and keyForDevice
                // emits the legacy untagged key for BRAM so existing
                // cache entries stay addressable.
                const mem::DeviceTraits traits =
                    mem::traitsOfName(request.platform);
                const fpga::Floorplan floorplan =
                    fpga::Floorplan::columnGrid(traits.domainCount,
                                                traits.columnHeight);
                if (auto stored = config_.fvmCache->storeKeyed(
                        harness::FvmCache::keyForDevice(
                            traits, request.pattern,
                            request.runsPerLevel),
                        floorplan,
                        harness::fvmFromSweep(response.sweep,
                                              floorplan));
                    !stored.ok()) {
                    warnc("serve", "FVM publication failed: {}",
                         stored.error().message);
                }
            }

            const auto &res = response.sweep.resilience;
            const double pressure = static_cast<double>(
                res.crashRecoveries + res.runsRetried +
                res.linkRetransmits + res.pmbusRetries +
                static_cast<std::uint64_t>(attempt - 1));
            observeFaultPressure(pressure);

            {
                std::unique_lock lock(statsMutex_);
                ++stats_.completed;
            }
            serveMetrics().completed.increment();
            noteCompleted(item, true, Errc::ok);
            work.promise.set_value(std::move(response));
            settled();
            return;
        }

        last = result.error();
        if (last.code == Errc::deadlineExceeded) {
            observeFaultPressure(static_cast<double>(attempt));
            respondExpired(item);
            return;
        }
        if (last.code == Errc::serverStopped) {
            respondStopped(item);
            return;
        }
        if (!transientErrc(last.code) ||
            attempt == config_.maxAttempts)
            break;
        {
            std::unique_lock lock(statsMutex_);
            ++stats_.retried;
        }
        serveMetrics().retried.increment();
        flightrec::note(flightrec::Level::info, "serve",
                        strFormat("characterize {} attempt {} hit {}; "
                                  "backing off",
                                  item.id, attempt, errcName(last.code)),
                        item.trace.flowId);
        if (!backoff(attempt, request_seed)) {
            respondStopped(item);
            return;
        }
    }

    observeFaultPressure(
        static_cast<double>(config_.maxAttempts));
    {
        std::unique_lock lock(statsMutex_);
        ++stats_.failed;
    }
    serveMetrics().failed.increment();
    noteCompleted(item, false, last.code);
    work.promise.set_value(std::move(last));
    settled();
}

Expected<std::shared_ptr<const nn::Network>>
UvoltServer::obtainModel(int setpoint_mv, std::uint64_t request_seed,
                         int &attempts)
{
    Error last = makeError(Errc::recoveryExhausted,
                           "model provider never ran");
    for (attempts = 1; attempts <= config_.maxAttempts; ++attempts) {
        auto model = config_.modelProvider(setpoint_mv);
        if (model.ok())
            return model;
        last = model.error();
        if (!transientErrc(last.code) ||
            attempts == config_.maxAttempts)
            return last;
        {
            std::unique_lock lock(statsMutex_);
            ++stats_.retried;
        }
        serveMetrics().retried.increment();
        if (!backoff(attempts, request_seed)) {
            return makeError(Errc::serverStopped,
                             "server stopped during model retry");
        }
    }
    return last;
}

void
UvoltServer::finishClassifyGroup(std::vector<Pending> items)
{
    struct Member
    {
        Pending item;
        std::size_t features = 0;
        std::size_t count = 0;
        std::size_t done = 0;
        std::vector<int> classes;
        bool finished = false; ///< responded (expired/stopped)
    };
    std::vector<Member> members;
    members.reserve(items.size());
    for (auto &pending : items) {
        Member member;
        const auto &request =
            std::get<ClassifyWork>(pending.work).request;
        member.count = request.sampleCount;
        member.features = request.samples.size() / request.sampleCount;
        member.classes.resize(member.count, -1);
        member.item = std::move(pending);
        members.push_back(std::move(member));
    }
    const bool group_coalesced = members.size() > 1;
    const int requested_setpoint =
        std::get<ClassifyWork>(members.front().item.work)
            .request.setpointMv;

    // Degradation raises the operating point toward the safe region;
    // the whole group shares one effective setpoint (same requested
    // point — that is what made them coalescible).
    const int effective_setpoint = requested_setpoint + floorRaiseMv();

    int model_attempts = 1;
    auto model =
        obtainModel(effective_setpoint,
                    combineSeeds(config_.seed, members.front().item.id),
                    model_attempts);
    if (!model.ok()) {
        for (auto &member : members) {
            if (model.error().code == Errc::serverStopped) {
                respondStopped(member.item);
            } else {
                Error error = model.error();
                {
                    std::unique_lock lock(statsMutex_);
                    ++stats_.failed;
                }
                serveMetrics().failed.increment();
                noteCompleted(member.item, false, error.code);
                std::get<ClassifyWork>(member.item.work)
                    .promise.set_value(std::move(error));
                settled();
            }
        }
        observeFaultPressure(static_cast<double>(model_attempts));
        return;
    }
    const std::shared_ptr<const nn::Network> &net = model.value();

    const std::size_t width = static_cast<std::size_t>(
        config_.coalesceBatch > 0 ? config_.coalesceBatch
                                  : nn::defaultEvalBatch());

    // Run block by block, checking stop and per-member deadlines at
    // every block boundary (the batch-block cancellation granularity).
    for (;;) {
        if (stopRequested()) {
            for (auto &member : members) {
                if (!member.finished && member.done < member.count) {
                    respondStopped(member.item);
                    member.finished = true;
                }
            }
            break;
        }
        const auto now = Clock::now();
        for (auto &member : members) {
            if (!member.finished && member.done < member.count &&
                now > member.item.deadline) {
                respondExpired(member.item);
                member.finished = true;
            }
        }

        std::vector<std::span<const float>> block;
        std::vector<std::pair<std::size_t, std::size_t>> slots;
        block.reserve(width);
        slots.reserve(width);
        std::size_t members_in_block = 0;
        for (std::size_t m = 0;
             m < members.size() && block.size() < width; ++m) {
            Member &member = members[m];
            if (member.finished || member.done >= member.count)
                continue;
            ++members_in_block;
            const auto &request =
                std::get<ClassifyWork>(member.item.work).request;
            std::size_t take = std::min(
                member.count - member.done, width - block.size());
            for (std::size_t j = 0; j < take; ++j) {
                const std::size_t sample = member.done + j;
                block.emplace_back(
                    request.samples.data() + sample * member.features,
                    member.features);
                slots.emplace_back(m, sample);
            }
        }
        if (block.empty())
            break;

        std::vector<int> classes(block.size(), -1);
        net->classifyScattered(block, classes);
        for (std::size_t i = 0; i < slots.size(); ++i) {
            Member &member = members[slots[i].first];
            member.classes[slots[i].second] = classes[i];
            ++member.done;
        }
        if (members_in_block > 1) {
            {
                std::unique_lock lock(statsMutex_);
                ++stats_.coalescedBlocks;
            }
            serveMetrics().coalescedBlocks.increment();
        }
    }

    for (auto &member : members) {
        if (member.finished)
            continue;
        ClassifyResponse response;
        response.classes = std::move(member.classes);
        response.effectiveSetpointMv = effective_setpoint;
        response.attempts = model_attempts;
        response.coalesced = group_coalesced;
        {
            std::unique_lock lock(statsMutex_);
            ++stats_.completed;
        }
        serveMetrics().completed.increment();
        noteCompleted(member.item, true, Errc::ok);
        observeFaultPressure(
            static_cast<double>(model_attempts - 1));
        std::get<ClassifyWork>(member.item.work)
            .promise.set_value(std::move(response));
        settled();
    }
}

bool
UvoltServer::backoff(int attempt, std::uint64_t request_seed)
{
    const double exponential =
        config_.backoffBaseMs * std::ldexp(1.0, attempt - 1);
    Rng rng(combineSeeds(request_seed,
                         0xb0ffull + static_cast<std::uint64_t>(
                                         attempt)));
    const double jitter =
        config_.backoffJitterMs > 0.0
            ? rng.uniform(0.0, config_.backoffJitterMs)
            : 0.0;
    const double delay_ms =
        std::min(config_.backoffMaxMs, exponential) + jitter;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
    return !stopRequested();
}

} // namespace uvolt::serve

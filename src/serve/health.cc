#include "serve/health.hh"

#include <algorithm>

#include "util/logging.hh"

namespace uvolt::serve
{

const char *
serveStateName(ServeState state)
{
    switch (state) {
      case ServeState::normal:
        return "normal";
      case ServeState::degraded:
        return "degraded";
      case ServeState::recovering:
        return "recovering";
    }
    panic("serveStateName: invalid state {}", static_cast<int>(state));
}

double
pressureOf(harness::GovernorHealth health)
{
    switch (health) {
      case harness::GovernorHealth::ok:
        return 0.0;
      case harness::GovernorHealth::heldUncertain:
        return 1.0;
      case harness::GovernorHealth::recovered:
        return 2.0;
    }
    panic("pressureOf: invalid GovernorHealth {}",
          static_cast<int>(health));
}

HealthTracker::HealthTracker(HealthConfig config)
    : config_(config)
{
    if (config_.window == 0)
        fatal("HealthTracker needs a nonzero window");
    config_.minSamples = std::max<std::size_t>(1, config_.minSamples);
}

void
HealthTracker::observe(double pressure)
{
    const bool healthy = pressure < config_.faultyThreshold;
    healthy_.push_back(healthy);
    healthyCount_ += healthy ? 1 : 0;
    if (healthy_.size() > config_.window) {
        healthyCount_ -= healthy_.front() ? 1 : 0;
        healthy_.pop_front();
    }
    ++observations_;
    if (observations_ < config_.minSamples)
        return;

    const double s = score();
    switch (state_) {
      case ServeState::normal:
        if (s < config_.degradeBelow) {
            state_ = ServeState::degraded;
            floorRaiseMv_ = std::min(config_.maxFloorRaiseMv,
                                     floorRaiseMv_ +
                                         config_.setpointStepMv);
            recordTransition();
        }
        break;
      case ServeState::degraded:
        if (s >= config_.recoverAbove) {
            state_ = ServeState::recovering;
            recordTransition();
        } else if (!healthy &&
                   floorRaiseMv_ < config_.maxFloorRaiseMv) {
            // Sustained pressure: keep backing the operating point off
            // toward the safe region, one regulator step at a time.
            floorRaiseMv_ = std::min(config_.maxFloorRaiseMv,
                                     floorRaiseMv_ +
                                         config_.setpointStepMv);
            recordTransition();
        }
        break;
      case ServeState::recovering:
        if (s < config_.degradeBelow) {
            state_ = ServeState::degraded;
            recordTransition();
        } else if (healthy) {
            floorRaiseMv_ = std::max(0, floorRaiseMv_ -
                                            config_.setpointStepMv);
            if (floorRaiseMv_ == 0)
                state_ = ServeState::normal;
            recordTransition();
        }
        break;
    }
}

double
HealthTracker::score() const
{
    if (healthy_.empty())
        return 1.0;
    return static_cast<double>(healthyCount_) /
           static_cast<double>(healthy_.size());
}

void
HealthTracker::recordTransition()
{
    transitions_.push_back(
        HealthTransition{observations_, state_, floorRaiseMv_});
}

} // namespace uvolt::serve

/**
 * @file
 * Bounded MPMC queue with admission control.
 *
 * The serving layer's first line of defense: a producer that finds the
 * queue full is told so immediately (Errc::queueFull) instead of being
 * blocked for an unbounded time behind a characterization campaign.
 * Consumers block on pop() — that is the worker's idle state — and are
 * all released by close(), after which pop() drains the remaining items
 * and then reports end-of-stream so a server can fail queued requests
 * explicitly rather than dropping them.
 *
 * A plain mutex + condition variable, like ThreadPool: serving items
 * are coarse (whole characterize/classify requests), so lock-free
 * cleverness would buy nothing and cost TSan-auditable simplicity.
 */

#ifndef UVOLT_SERVE_REQUEST_QUEUE_HH
#define UVOLT_SERVE_REQUEST_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/error.hh"

namespace uvolt::serve
{

/** Bounded FIFO with reject-when-full admission. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        if (capacity_ == 0)
            fatal("BoundedQueue needs a nonzero capacity");
    }

    /**
     * Admit one item, or refuse without blocking: queueFull at
     * capacity, serverStopped after close().
     */
    Expected<void>
    tryPush(T item)
    {
        {
            std::unique_lock lock(mutex_);
            if (closed_) {
                return makeError(Errc::serverStopped,
                                 "queue closed; not accepting work");
            }
            if (items_.size() >= capacity_) {
                return makeError(Errc::queueFull,
                                 "queue at capacity ({} items)",
                                 capacity_);
            }
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
        return {};
    }

    /**
     * Take the oldest item, blocking while the queue is open and empty.
     * nullopt = closed and fully drained (consumer shutdown signal).
     */
    std::optional<T>
    pop()
    {
        std::unique_lock lock(mutex_);
        ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /**
     * Take the oldest item only if @a matches(front) — the coalescer's
     * peek-and-pop: FIFO order is preserved because only the head is
     * ever considered. Never blocks; nullopt when empty or no match.
     */
    template <typename Pred>
    std::optional<T>
    tryPopMatching(Pred &&matches)
    {
        std::unique_lock lock(mutex_);
        if (items_.empty() || !matches(items_.front()))
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Stop admitting; wake every blocked consumer. Idempotent. */
    void
    close()
    {
        {
            std::unique_lock lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    bool
    closed() const
    {
        std::unique_lock lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::unique_lock lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace uvolt::serve

#endif // UVOLT_SERVE_REQUEST_QUEUE_HH

/**
 * @file
 * Undervolting-as-a-service: a long-running in-process serving daemon
 * in front of the characterization harness and the batched inference
 * engine.
 *
 * The paper's premise — operating reliably *below* the guardband — is a
 * service-level contract once traffic is continuous: a fault storm
 * (PMBus NACKs, setpoint mis-latches, spurious crashes; everything the
 * PR 1 injector models) must degrade the service gracefully, never drop
 * or corrupt client work. UvoltServer enforces that contract with:
 *
 *  - Admission control. A bounded MPMC queue; a full queue rejects
 *    with Errc::queueFull immediately — callers are never blocked
 *    unboundedly behind a characterization campaign.
 *  - Deadlines. Per-request deadlines are checked cooperatively at
 *    sweep-level granularity (characterize runs as maxLevels=1 slices)
 *    and at batch-block granularity (classify blocks), so an expired
 *    request stops consuming the board promptly.
 *  - Retries. Transient fault classes (crash-detected, link/PMBus/
 *    verify/recovery exhausted) are retried with exponential backoff
 *    plus seeded jitter. Requests are idempotent by construction:
 *    every characterize derives its seed from the PR 4 config-digest
 *    of its own shape, so a retry (or a resubmission after a restart)
 *    replays the identical campaign — and the PR 1 masking guarantee
 *    makes the result bit-identical with the injector on or off.
 *  - Coalescing. Concurrent classify requests at the same operating
 *    point are packed into forwardBatch-sized blocks (scatter-gather,
 *    no staging copies) and share one FvmCache across tenants.
 *  - Graceful degradation. A sliding-window health score fed from the
 *    retry/recovery accounting (and GovernorHealth via pressureOf())
 *    sheds low-priority work and raises the operating setpoint toward
 *    the safe region under sustained fault pressure, then ramps back
 *    down when healthy — see serve/health.hh.
 *  - Lifecycle. start (construction) / drain / stop. Checkpoints are
 *    flushed after every sweep slice, so an in-flight characterize
 *    cancelled by stop() resumes bit-identically when the same request
 *    shape is resubmitted to a later server (PR 1 checkpoints).
 *  - Telemetry. serve.* counters (admitted/rejected/deadline_exceeded/
 *    retried/degraded/completed/failed), a queue-depth gauge,
 *    queue-wait and end-to-end latency histograms, and a trace span
 *    per request.
 */

#ifndef UVOLT_SERVE_SERVER_HH
#define UVOLT_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "harness/experiment.hh"
#include "harness/fleet.hh"
#include "nn/network.hh"
#include "pmbus/fault_injector.hh"
#include "serve/health.hh"
#include "serve/request_queue.hh"
#include "util/error.hh"
#include "util/profiler.hh"
#include "util/telemetry.hh"

namespace uvolt::serve
{

/** Work classes the degradation path distinguishes. */
enum class Priority
{
    low,    ///< sheddable under fault pressure
    normal, ///< served in every state
};

/** Run a Listing-1 characterization campaign for a tenant. */
struct CharacterizeRequest
{
    std::string platform;       ///< catalog name, e.g. "VC707"
    harness::PatternSpec pattern = harness::PatternSpec::allOnes();
    double ambientC = 50.0;
    int runsPerLevel = 5;
    Priority priority = Priority::normal;
    double deadlineMs = 0.0;    ///< from admission; 0 = none
};

struct CharacterizeResponse
{
    harness::SweepResult sweep;
    int attempts = 1;     ///< serve-level tries consumed
    bool resumed = false; ///< continued from an on-disk checkpoint
};

/** Classify a batch of samples at an operating point. */
struct ClassifyRequest
{
    /** Sample-major feature rows, sampleCount x features back to back. */
    std::vector<float> samples;
    std::size_t sampleCount = 0;
    int setpointMv = 0;         ///< requested VCCBRAM operating point
    Priority priority = Priority::normal;
    double deadlineMs = 0.0;    ///< from admission; 0 = none
};

struct ClassifyResponse
{
    std::vector<int> classes;    ///< one class per sample
    int effectiveSetpointMv = 0; ///< after any degradation floor raise
    int attempts = 1;            ///< serve-level tries consumed
    bool coalesced = false;      ///< shared a block with another request
};

/**
 * Maps an operating point onto the model serving it (e.g. an
 * Accelerator's observedNetwork() at that setpoint, or a fixed
 * fault-free reference). Transient Errors are retried like any other
 * fault; the returned network must stay valid for the call's duration
 * (shared_ptr ownership).
 */
using ModelProvider = std::function<
    Expected<std::shared_ptr<const nn::Network>>(int setpoint_mv)>;

/** Serving knobs. */
struct ServerConfig
{
    std::size_t queueCapacity = 64; ///< admission-control bound
    std::size_t workers = 2;        ///< serving threads (>= 1)

    int maxAttempts = 3;        ///< tries per request on transient faults
    double backoffBaseMs = 1.0; ///< first retry delay (doubles per try)
    double backoffJitterMs = 1.0; ///< uniform seeded jitter on top
    double backoffMaxMs = 50.0;   ///< delay cap

    int coalesceBatch = 0; ///< classify block width; 0 = defaultEvalBatch
    int sliceLevels = 1;   ///< sweep levels between deadline checks

    /** Characterize checkpoints + resume-after-restart ("" = off). */
    std::string checkpointDir;

    /** Cross-tenant FVM cache; successful characterizations publish
     *  into it (nullptr = no publication). */
    harness::FvmCache *fvmCache = nullptr;

    /** Harsh environment for every characterize board (the PR 1
     *  injector); reseeded per request + attempt. */
    std::optional<pmbus::NoiseConfig> noise;

    harness::RecoveryPolicy recovery; ///< per-run watchdog budget

    HealthConfig health; ///< degradation state machine knobs

    /** Serves classify requests; required before the first classify. */
    ModelProvider modelProvider;

    std::uint64_t seed = 1; ///< base of per-request seed derivation

    /** Flight-recorder dump directory ("" disables server dumps). */
    std::string blackboxDir = "results";

    /** Consecutive deadline expiries that trigger a flight-recorder
     *  dump (blackbox_deadline_storm.json); 0 disables. */
    int deadlineStormThreshold = 8;

    /** Tolerated failed/responded fraction; statusReport() reports the
     *  actual fraction divided by this budget (1.0 = budget spent). */
    double errorBudget = 0.05;
};

/** Exactly-once accounting, mirrored in serve.* telemetry counters. */
struct ServerStats
{
    std::uint64_t admitted = 0;  ///< accepted into the queue
    std::uint64_t rejected = 0;  ///< refused: queue full
    std::uint64_t shed = 0;      ///< refused: degraded, low priority
    std::uint64_t completed = 0; ///< responded with a value
    std::uint64_t failed = 0;    ///< responded with an Error
    std::uint64_t deadlineExceeded = 0; ///< subset of failed
    std::uint64_t cancelled = 0; ///< subset of failed: server stopped
    std::uint64_t retried = 0;   ///< transient-fault retry attempts
    std::uint64_t coalescedBlocks = 0; ///< blocks mixing >= 2 requests
};

/**
 * Point-in-time operator view of the server, rendered by
 * `serve_demo --watch` and exported next to the Prometheus snapshot.
 * Latency quantiles come from the telemetry histograms and are zero
 * when telemetry is off; everything else is live server state.
 */
struct StatusReport
{
    ServeState state = ServeState::normal;
    int floorRaiseMv = 0;
    std::size_t queueDepth = 0;
    std::size_t queueCapacity = 0;
    ServerStats stats;

    double queueWaitP50Ms = 0.0, queueWaitP99Ms = 0.0;
    double e2eP50Ms = 0.0, e2eP99Ms = 0.0;
    double characterizeP50Ms = 0.0, characterizeP99Ms = 0.0;
    double classifyP50Ms = 0.0, classifyP99Ms = 0.0;

    /** failed/responded over the configured budget; >= 1 = budget
     *  exhausted. 0 while nothing has been responded to. */
    double errorBudgetBurn = 0.0;

    /**
     * Hottest sampled span frames (self/total sample counts) from the
     * process-wide SpanProfiler, when one is running. Empty when no
     * profiler is active or no samples have landed yet.
     */
    std::vector<profiler::FrameStat> hotFrames;
    std::uint64_t profileSamples = 0; ///< samples behind hotFrames

    /** Multi-line human rendering (the --watch screen). */
    std::string render() const;
};

/** How stop() treats in-flight and queued work. */
enum class StopMode
{
    drain, ///< finish everything admitted, then stop
    now,   ///< cancel cooperatively; queued work fails serverStopped
};

/**
 * The serving daemon. Construction starts the workers; destruction
 * stops them (StopMode::now). Thread-safe: any thread may submit.
 */
class UvoltServer
{
  public:
    explicit UvoltServer(ServerConfig config);
    ~UvoltServer();

    UvoltServer(const UvoltServer &) = delete;
    UvoltServer &operator=(const UvoltServer &) = delete;

    /**
     * Admit a characterization campaign. Synchronous refusals come
     * back as Errors (queueFull, serverStopped, loadShed); an admitted
     * request resolves its future exactly once.
     */
    Expected<std::future<Expected<CharacterizeResponse>>>
    submitCharacterize(CharacterizeRequest request);

    /** Admit a classification batch; same admission contract. */
    Expected<std::future<Expected<ClassifyResponse>>>
    submitClassify(ClassifyRequest request);

    /**
     * Stop admitting and wait until every admitted request has been
     * responded to. The workers stay alive (a drained server still
     * answers stats()); call stop() to join them.
     */
    void drain();

    /**
     * Shut down. drain mode finishes the backlog first; now mode
     * cancels cooperatively — in-flight characterizes stop at the next
     * slice boundary with their checkpoint flushed (Errc::serverStopped)
     * and queued requests fail serverStopped. Idempotent.
     */
    void stop(StopMode mode = StopMode::drain);

    ServerStats stats() const;

    /**
     * Live operator view: health state, queue depth, per-class latency
     * quantiles (from telemetry; zeros when off), error-budget burn.
     * Safe to call from any thread at any time.
     */
    StatusReport statusReport() const;

    /** In-queue depth right now (also exported as serve.queue_depth). */
    std::size_t queueDepth() const { return queue_.size(); }

    // --- degradation ----------------------------------------------------

    /**
     * Feed one fault-pressure observation (scripted profiles, governor
     * health via pressureOf(), external monitors). The server also
     * feeds itself: every served request contributes its own
     * retry/recovery accounting. Serialized internally.
     */
    void observeFaultPressure(double pressure);

    ServeState healthState() const;

    /** mV currently added to requested setpoints (0 = healthy). */
    int floorRaiseMv() const;

    /** Transition log of the degradation state machine, in order. */
    std::vector<HealthTransition> healthTransitions() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct CharacterizeWork
    {
        CharacterizeRequest request;
        std::promise<Expected<CharacterizeResponse>> promise;
    };

    struct ClassifyWork
    {
        ClassifyRequest request;
        std::promise<Expected<ClassifyResponse>> promise;
    };

    struct Pending
    {
        std::uint64_t id = 0;
        Priority priority = Priority::normal;
        Clock::time_point submitted;
        Clock::time_point deadline; ///< time_point::max() = none
        /** Flow linkage minted at admission; inactive = telemetry off. */
        telemetry::TraceContext trace;
        std::uint64_t submitNs = 0; ///< admission time, trace timebase
        std::variant<CharacterizeWork, ClassifyWork> work;
    };

    template <typename Request, typename Response>
    Expected<std::future<Expected<Response>>> admit(Request request);

    void workerLoop();
    void process(Pending item);
    void finishCharacterize(Pending &item);
    void finishClassifyGroup(std::vector<Pending> items);

    Expected<CharacterizeResponse>
    characterizeOnce(const CharacterizeRequest &request,
                     std::uint64_t request_seed, int attempt,
                     Clock::time_point deadline, bool &resumed);

    /**
     * Non-BRAM devices: time-sliced backend sweep. The stateless mem
     * jitter stream makes slices resumable without checkpoint files,
     * and the injected-noise config is ignored (it drives a
     * pmbus::Board, which only the BRAM path has).
     */
    Expected<CharacterizeResponse>
    characterizeMemOnce(const CharacterizeRequest &request,
                        std::uint64_t request_seed,
                        Clock::time_point deadline);

    Expected<std::shared_ptr<const nn::Network>>
    obtainModel(int setpoint_mv, std::uint64_t request_seed,
                int &attempts);

    /** Seeded backoff before retry @a attempt; false if stopping. */
    bool backoff(int attempt, std::uint64_t request_seed);

    /** One admitted request has been responded to (exactly once). */
    void settled();

    bool stopRequested() const
    {
        return stopNow_.load(std::memory_order_relaxed);
    }

    void respondExpired(Pending &item);
    void respondStopped(Pending &item);
    void noteCompleted(const Pending &item, bool ok, Errc code);

    /** Deadline-storm detection: count consecutive expiries and dump
     *  the flight recorder when the configured threshold is crossed. */
    void noteDeadlineExpiry();

    ServerConfig config_;
    BoundedQueue<Pending> queue_;
    std::vector<std::thread> workers_;

    std::atomic<bool> accepting_{true};
    std::atomic<bool> stopNow_{false};
    std::atomic<bool> joined_{false};
    std::atomic<std::uint64_t> nextId_{1};

    /** Admitted requests whose promise is not yet resolved. */
    std::atomic<std::uint64_t> unresponded_{0};

    mutable std::mutex drainMutex_;
    std::condition_variable drainCv_; ///< unresponded_ reached zero

    mutable std::mutex healthMutex_;
    HealthTracker health_;

    /** Consecutive deadline expiries since the last completion. */
    std::atomic<int> deadlineStreak_{0};

    /** Serializes identical characterize shapes (checkpoint owners). */
    std::mutex labelsMutex_;
    std::map<std::string, std::shared_ptr<std::mutex>> labelLocks_;

    mutable std::mutex statsMutex_;
    ServerStats stats_;

    std::mutex stopMutex_; ///< orders stop() callers
};

} // namespace uvolt::serve

#endif // UVOLT_SERVE_SERVER_HH

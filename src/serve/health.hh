/**
 * @file
 * Graceful degradation: a sliding-window health score and the
 * shed/raise/recover state machine it drives.
 *
 * The paper warns that "repeating these tests in more noisy and harsh
 * environments can cause observable faults above observed Vmin" — a
 * serving deployment below the guardband must therefore treat sustained
 * fault pressure as a signal, not as bad luck. The tracker ingests one
 * scalar observation per served request (injected-fault events absorbed
 * by the retry stack: crash recoveries, run retries, link/PMBus
 * retries; or a GovernorHealth reading via pressureOf()) and keeps the
 * healthy fraction of the last `window` observations as the score.
 *
 * The state machine is deliberately a pure function of the observation
 * sequence — no clocks, no randomness — so a scripted fault-pressure
 * profile produces the same transition sequence on every run and at
 * any worker count (the server serializes observe() calls):
 *
 *          score < degradeBelow                 score >= recoverAbove
 *   normal ----------------------> degraded ----------------------+
 *     ^        (shed low-priority;    |  ^                        |
 *     |         raise floor toward    |  | score < degradeBelow   v
 *     |         the safe setpoint     |  +-------------------- recovering
 *     |         on each unhealthy     |      (ramp the floor back
 *     |         observation)          |       down one step per
 *     +-------------------------------+       healthy observation)
 *            floor reaches 0
 *
 * While degraded or recovering, low-priority work is shed and the
 * server refuses to operate below floorMv() — the setpoint is raised
 * toward the safe region exactly as the governor backs off its rail.
 */

#ifndef UVOLT_SERVE_HEALTH_HH
#define UVOLT_SERVE_HEALTH_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "harness/governor.hh"

namespace uvolt::serve
{

/** Knobs of the degradation state machine. */
struct HealthConfig
{
    std::size_t window = 16;   ///< sliding observations in the score
    std::size_t minSamples = 4; ///< observations before any transition
    double faultyThreshold = 1.0; ///< observation >= this is unhealthy
    double degradeBelow = 0.5; ///< score entering degraded
    double recoverAbove = 0.75; ///< score entering recovering
    int setpointStepMv = 10;   ///< floor raise/ramp per observation
    int maxFloorRaiseMv = 50;  ///< cap on the raised floor ("toward
                               ///< Vmin", never past the safe region)
};

/** Serving mode the health score selects. */
enum class ServeState
{
    normal,     ///< full service at the requested operating points
    degraded,   ///< shedding low-priority work, floor raised
    recovering, ///< healthy again; ramping the floor back down
};

/** Stable short name ("normal"/"degraded"/"recovering"). */
const char *serveStateName(ServeState state);

/** One state-machine transition (or floor movement), for audit. */
struct HealthTransition
{
    std::uint64_t observation = 0; ///< 1-based observe() count
    ServeState state = ServeState::normal;
    int floorRaiseMv = 0; ///< raised floor after this transition
};

/**
 * Map a governor health reading onto the tracker's pressure scale:
 * ok = 0 (healthy), heldUncertain = 1, recovered = 2 (both unhealthy
 * under the default faultyThreshold).
 */
double pressureOf(harness::GovernorHealth health);

/**
 * The sliding-window health score and degradation state machine.
 * Not internally synchronized: the server serializes observe() calls
 * (that serialization is what makes scripted profiles deterministic
 * across worker counts).
 */
class HealthTracker
{
  public:
    explicit HealthTracker(HealthConfig config = {});

    /**
     * Ingest one observation of fault pressure (>= faultyThreshold is
     * unhealthy) and advance the state machine.
     */
    void observe(double pressure);

    /** Healthy fraction of the window (1.0 before any observation). */
    double score() const;

    ServeState state() const { return state_; }

    /** mV to add to every requested setpoint (0 when fully healthy). */
    int floorRaiseMv() const { return floorRaiseMv_; }

    /** Low-priority work is shed outside normal operation. */
    bool sheddingLowPriority() const
    {
        return state_ != ServeState::normal;
    }

    std::uint64_t observations() const { return observations_; }

    /** Every state/floor change, in order (the determinism witness). */
    const std::vector<HealthTransition> &transitions() const
    {
        return transitions_;
    }

  private:
    void recordTransition();

    HealthConfig config_;
    std::deque<bool> healthy_; ///< window of per-observation verdicts
    std::size_t healthyCount_ = 0;
    std::uint64_t observations_ = 0;
    ServeState state_ = ServeState::normal;
    int floorRaiseMv_ = 0;
    std::vector<HealthTransition> transitions_;
};

} // namespace uvolt::serve

#endif // UVOLT_SERVE_HEALTH_HH

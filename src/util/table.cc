#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/logging.hh"

namespace uvolt
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        fatal("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        fatal("TextTable row width {} != header width {}",
              row.size(), header_.size());
    }
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            bool needs_quote =
                row[c].find_first_of(",\"\n") != std::string::npos;
            if (needs_quote) {
                os << '"';
                for (char ch : row[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << row[c];
            }
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtVolts(double volts)
{
    return fmtDouble(volts, 2) + "V";
}

std::string
fmtPercent(double fraction, int decimals)
{
    return fmtDouble(fraction * 100.0, decimals) + "%";
}

bool
writeCsv(const TextTable &table, const std::string &path)
{
    std::error_code ec;
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path);
    if (!out) {
        warn("could not open '{}' for writing", path);
        return false;
    }
    table.printCsv(out);
    return static_cast<bool>(out);
}

} // namespace uvolt

#include "util/error.hh"

namespace uvolt
{

const char *
errcName(Errc code)
{
    switch (code) {
      case Errc::ok:
        return "ok";
      case Errc::crashDetected:
        return "crash-detected";
      case Errc::linkExhausted:
        return "link-exhausted";
      case Errc::pmbusExhausted:
        return "pmbus-exhausted";
      case Errc::verifyExhausted:
        return "verify-exhausted";
      case Errc::recoveryExhausted:
        return "recovery-exhausted";
      case Errc::badCheckpoint:
        return "bad-checkpoint";
      case Errc::cacheMiss:
        return "cache-miss";
      case Errc::corruptCache:
        return "corrupt-cache";
      case Errc::queueFull:
        return "queue-full";
      case Errc::deadlineExceeded:
        return "deadline-exceeded";
      case Errc::serverStopped:
        return "server-stopped";
      case Errc::loadShed:
        return "load-shed";
      case Errc::unknownFlag:
        return "unknown-flag";
    }
    panic("errcName: invalid Errc {}", static_cast<int>(code));
}

} // namespace uvolt

/**
 * @file
 * Small statistics toolkit used by the characterization harness.
 *
 * The paper reports its results as medians of 100 runs plus min/max/stddev
 * summaries (Table II) and per-BRAM distribution statistics (Fig 5); this
 * header provides exactly those reductions.
 */

#ifndef UVOLT_UTIL_STATS_HH
#define UVOLT_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace uvolt
{

/**
 * Streaming mean / variance accumulator (Welford's algorithm) with
 * min/max tracking.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with fewer than two observations). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    double minimum() const { return count_ ? min_ : 0.0; }
    double maximum() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Quantile of a sample using linear interpolation between order statistics.
 * @param values sample (copied and sorted internally)
 * @param q quantile in [0, 1]; q = 0.5 is the median the paper reports
 */
double quantile(std::vector<double> values, double q);

/** Median shorthand: quantile(values, 0.5). */
double median(std::vector<double> values);

/**
 * Fixed-width histogram over [lo, hi) with the given number of bins.
 * Out-of-range samples are clamped to the edge bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t countAt(std::size_t bin) const { return counts_[bin]; }
    std::size_t total() const { return total_; }

    /** Lower edge of a bin. */
    double binLow(std::size_t bin) const;

    /** Upper edge of a bin. */
    double binHigh(std::size_t bin) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace uvolt

#endif // UVOLT_UTIL_STATS_HH

#include "util/profiler.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "util/fsio.hh"
#include "util/logging.hh"

namespace uvolt::profiler
{

std::string
Profile::foldedText() const
{
    std::ostringstream out;
    for (const auto &[stack, count] : folded)
        out << stack << " " << count << "\n";
    return out.str();
}

std::vector<FrameStat>
Profile::topFrames(std::size_t n) const
{
    std::map<std::string, FrameStat> stats;
    std::vector<std::string_view> frames;
    for (const auto &[stack, count] : folded) {
        frames.clear();
        std::size_t begin = 0;
        while (begin <= stack.size()) {
            const std::size_t end = stack.find(';', begin);
            const std::size_t stop =
                end == std::string::npos ? stack.size() : end;
            frames.emplace_back(stack.data() + begin, stop - begin);
            if (end == std::string::npos)
                break;
            begin = end + 1;
        }
        if (frames.empty())
            continue;
        // Total counts each distinct frame of the stack once, so a
        // recursive span cannot exceed the sample total.
        std::vector<std::string_view> unique(frames);
        std::sort(unique.begin(), unique.end());
        unique.erase(std::unique(unique.begin(), unique.end()),
                     unique.end());
        for (std::string_view frame : unique) {
            auto &stat = stats[std::string(frame)];
            stat.name = frame;
            stat.total += count;
        }
        stats[std::string(frames.back())].self += count;
    }

    std::vector<FrameStat> ranked;
    ranked.reserve(stats.size());
    for (auto &[name, stat] : stats)
        ranked.push_back(std::move(stat));
    std::sort(ranked.begin(), ranked.end(),
              [](const FrameStat &a, const FrameStat &b) {
                  if (a.self != b.self)
                      return a.self > b.self;
                  if (a.total != b.total)
                      return a.total > b.total;
                  return a.name < b.name;
              });
    if (ranked.size() > n)
        ranked.resize(n);
    return ranked;
}

void
foldInto(Profile &profile,
         const std::vector<telemetry::SpanStackSnapshot> &stacks)
{
    for (const auto &stack : stacks) {
        if (stack.frames.empty())
            continue;
        std::string key;
        for (std::size_t i = 0; i < stack.frames.size(); ++i) {
            if (i)
                key.push_back(';');
            key += stack.frames[i];
        }
        ++profile.folded[key];
        ++profile.samples;
        if (stack.flowId != 0)
            ++profile.flowSamples;
        if (stack.truncated)
            ++profile.truncated;
    }
}

bool
writeFolded(const Profile &profile, const std::string &path)
{
    const auto written = writeFileAtomic(path, profile.foldedText());
    if (!written) {
        warnc("profiler", "could not write folded profile '{}'", path);
        return false;
    }
    return true;
}

#ifndef UVOLT_TELEMETRY_DISABLED

SpanProfiler::SpanProfiler(std::uint64_t interval_us)
    : intervalUs_(interval_us == 0 ? 997 : interval_us)
{
}

SpanProfiler::~SpanProfiler()
{
    stop();
}

void
SpanProfiler::start()
{
    std::lock_guard lock(mutex_);
    if (running_)
        return;
    stopping_ = false;
    running_ = true;
    data_.intervalUs = intervalUs_;
    thread_ = std::thread([this] { samplerLoop(); });
}

void
SpanProfiler::stop()
{
    {
        std::lock_guard lock(mutex_);
        if (!running_) // already stopped; keep stop() idempotent
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    std::lock_guard lock(mutex_);
    running_ = false;
}

bool
SpanProfiler::running() const
{
    std::lock_guard lock(mutex_);
    return running_ && !stopping_;
}

Profile
SpanProfiler::snapshot() const
{
    std::lock_guard lock(mutex_);
    return data_;
}

void
SpanProfiler::reset()
{
    std::lock_guard lock(mutex_);
    data_ = Profile{};
    data_.intervalUs = intervalUs_;
}

std::uint64_t
SpanProfiler::intervalFromEnv()
{
    if (const char *value = std::getenv("UVOLT_PROFILE_HZ")) {
        const double hz = std::atof(value);
        if (hz > 0.0) {
            const double us = 1e6 / hz;
            return us < 1.0 ? 1 : static_cast<std::uint64_t>(us);
        }
    }
    return 997;
}

SpanProfiler &
SpanProfiler::global()
{
    // Leaked like the registry: stoppable during static destructors
    // without ordering hazards. Binaries stop it before exporting.
    static SpanProfiler *instance = new SpanProfiler;
    return *instance;
}

void
SpanProfiler::samplerLoop()
{
    telemetry::setCurrentThreadName("uvolt-profiler");
    telemetry::Registry &registry = telemetry::Registry::global();
    std::unique_lock lock(mutex_);
    while (!stopping_) {
        lock.unlock();
        // The sample itself: a read-only pass over the span stacks.
        // Skipped entirely while recording is off so an idle profiler
        // costs one atomic load per tick.
        std::vector<telemetry::SpanStackSnapshot> stacks;
        if (telemetry::Telemetry::enabled())
            stacks = registry.sampleSpanStacks();
        lock.lock();
        ++data_.ticks;
        foldInto(data_, stacks);
        cv_.wait_for(lock, std::chrono::microseconds(intervalUs_),
                     [this] { return stopping_; });
    }
}

#endif // UVOLT_TELEMETRY_DISABLED

} // namespace uvolt::profiler

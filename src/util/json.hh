/**
 * @file
 * Minimal JSON support: string escaping and a small value-tree parser.
 *
 * The observability layer emits several JSON artifacts (Chrome traces,
 * metrics snapshots, BENCH_uvolt.json, run manifests) and must be able
 * to load its own manifests back for provenance checks. The toolchain
 * ships no JSON library, so this header provides exactly the subset the
 * repo needs: RFC 8259 string escaping for the writers, and a strict
 * recursive-descent parser producing an immutable Value tree for the
 * readers. The parser accepts only what the writers emit (objects,
 * arrays, strings with the common escapes, doubles, bools, null) and
 * reports malformed input as Errc::corruptCache with line context, the
 * same taxonomy the FVM cache uses for unusable on-disk artifacts.
 */

#ifndef UVOLT_UTIL_JSON_HH
#define UVOLT_UTIL_JSON_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace uvolt::json
{

/** Escape a string for inclusion inside JSON double quotes. */
std::string escaped(std::string_view text);

/** One node of a parsed JSON document. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Parse a complete document (trailing garbage is an error). */
    static Expected<Value> parse(std::string_view text);

    /** Parse the file at @a path. */
    static Expected<Value> parseFile(const std::string &path);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** The boolean; fatal() on a non-bool. */
    bool boolean() const;

    /** The number; fatal() on a non-number. */
    double number() const;

    /** The string; fatal() on a non-string. */
    const std::string &string() const;

    /** Array elements; fatal() on a non-array. */
    const std::vector<Value> &items() const;

    /** Object members in document order; fatal() on a non-object. */
    const std::vector<std::pair<std::string, Value>> &members() const;

    /** Member by key, or nullptr (objects only; fatal() otherwise). */
    const Value *find(std::string_view key) const;

    /** Member by key; fatal() when absent. */
    const Value &at(std::string_view key) const;

    // Typed convenience lookups with defaults (objects only).
    double numberOr(std::string_view key, double fallback) const;
    std::string stringOr(std::string_view key,
                         const std::string &fallback) const;

  private:
    friend class Parser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

} // namespace uvolt::json

#endif // UVOLT_UTIL_JSON_HH

#include "util/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.hh"

namespace uvolt
{

/*
 * For scalar samples, k-means admits an exact solution: an optimal
 * clustering of sorted 1-D data is a partition into k contiguous runs,
 * so dynamic programming over split points finds the global optimum in
 * O(k n^2) with O(1) per-interval SSE via prefix sums. This avoids the
 * classic Lloyd's-algorithm failure mode on the heavy-tailed fault-rate
 * distributions this library clusters (a huge mass at zero plus a thin
 * tail), where poor seeding merges the tail clusters.
 */
KMeansResult
kMeans1d(const std::vector<double> &samples, std::size_t k,
         std::size_t max_iterations)
{
    (void)max_iterations; // exact solver; kept for interface stability
    const std::size_t n = samples.size();
    if (k == 0 || k > n)
        fatal("kMeans1d: k={} invalid for {} samples", k, n);

    // Sort indices so clusters are contiguous runs.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&samples](std::size_t a, std::size_t b) {
                  return samples[a] < samples[b];
              });

    std::vector<double> sorted(n);
    for (std::size_t i = 0; i < n; ++i)
        sorted[i] = samples[order[i]];

    // Prefix sums for O(1) interval SSE:
    // sse(i, j) = sumsq - sum^2 / count over sorted[i..j].
    std::vector<double> prefix(n + 1, 0.0), prefix_sq(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        prefix[i + 1] = prefix[i] + sorted[i];
        prefix_sq[i + 1] = prefix_sq[i] + sorted[i] * sorted[i];
    }
    auto sse = [&](std::size_t i, std::size_t j) {
        const double count = static_cast<double>(j - i + 1);
        const double sum = prefix[j + 1] - prefix[i];
        const double sumsq = prefix_sq[j + 1] - prefix_sq[i];
        return std::max(0.0, sumsq - sum * sum / count);
    };

    constexpr double infinity = std::numeric_limits<double>::infinity();

    // cost[c][j]: best SSE for sorted[0..j] split into c+1 clusters.
    std::vector<std::vector<double>> cost(
        k, std::vector<double>(n, infinity));
    std::vector<std::vector<std::size_t>> split(
        k, std::vector<std::size_t>(n, 0));

    for (std::size_t j = 0; j < n; ++j)
        cost[0][j] = sse(0, j);
    for (std::size_t c = 1; c < k; ++c) {
        for (std::size_t j = c; j < n; ++j) {
            for (std::size_t i = c; i <= j; ++i) {
                const double candidate = cost[c - 1][i - 1] + sse(i, j);
                if (candidate < cost[c][j]) {
                    cost[c][j] = candidate;
                    split[c][j] = i;
                }
            }
        }
    }

    // Recover the run boundaries.
    std::vector<std::size_t> starts(k);
    {
        std::size_t end = n - 1;
        for (std::size_t c = k; c-- > 0;) {
            const std::size_t start = c == 0 ? 0 : split[c][end];
            starts[c] = start;
            if (c > 0)
                end = start - 1;
        }
    }

    KMeansResult result;
    result.iterations = 1;
    result.centroids.resize(k);
    result.sizes.assign(k, 0);
    result.clusterMeans.assign(k, 0.0);
    result.assignment.resize(n);

    for (std::size_t c = 0; c < k; ++c) {
        const std::size_t start = starts[c];
        const std::size_t stop = (c + 1 < k) ? starts[c + 1] - 1 : n - 1;
        const double count = static_cast<double>(stop - start + 1);
        const double mean = (prefix[stop + 1] - prefix[start]) / count;
        result.centroids[c] = mean;
        result.clusterMeans[c] = mean;
        result.sizes[c] = stop - start + 1;
        for (std::size_t i = start; i <= stop; ++i)
            result.assignment[order[i]] = c;
    }
    return result;
}

} // namespace uvolt

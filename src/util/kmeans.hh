/**
 * @file
 * One-dimensional k-means clustering.
 *
 * The paper (Section II-C.3, Fig 5) clusters per-BRAM fault rates into
 * low-, mid-, and high-vulnerable classes with k-means; this is the same
 * algorithm specialized to scalar samples, which lets us use an exact
 * deterministic initialization (quantile seeding) instead of k-means++.
 */

#ifndef UVOLT_UTIL_KMEANS_HH
#define UVOLT_UTIL_KMEANS_HH

#include <cstddef>
#include <vector>

namespace uvolt
{

/** Result of a 1-D k-means run. */
struct KMeansResult
{
    /** Cluster centroid values, sorted ascending. */
    std::vector<double> centroids;

    /** Per-sample cluster index into centroids (same order as input). */
    std::vector<std::size_t> assignment;

    /** Number of samples per cluster. */
    std::vector<std::size_t> sizes;

    /** Mean of the samples in each cluster (equals centroid at fixpoint). */
    std::vector<double> clusterMeans;

    /** Lloyd iterations executed before convergence. */
    std::size_t iterations = 0;
};

/**
 * Cluster scalar samples into k groups.
 *
 * Solved exactly: optimal 1-D k-means clusters are contiguous runs of
 * the sorted sample, found by dynamic programming in O(k n^2) — robust
 * on the heavy-tailed fault-rate distributions this library clusters
 * (most mass at zero plus a thin tail), where Lloyd's algorithm is
 * easily trapped. Deterministic by construction. Intended for n up to
 * a few thousand (per-BRAM statistics).
 *
 * @param samples input values (need not be sorted)
 * @param k number of clusters, 1 <= k <= samples.size()
 * @param max_iterations unused (exact solver); kept for API stability
 */
KMeansResult kMeans1d(const std::vector<double> &samples, std::size_t k,
                      std::size_t max_iterations = 200);

} // namespace uvolt

#endif // UVOLT_UTIL_KMEANS_HH

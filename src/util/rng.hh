/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (process variation, data sets,
 * training, fault-injection campaigns) flows through Rng so that a chip,
 * an experiment, or a whole benchmark run is a pure function of its seeds.
 * The generator is xoshiro256** seeded via SplitMix64, which gives
 * high-quality 64-bit streams that are cheap to fork per-subsystem.
 */

#ifndef UVOLT_UTIL_RNG_HH
#define UVOLT_UTIL_RNG_HH

#include <cstdint>
#include <string_view>
#include <vector>

namespace uvolt
{

/** SplitMix64 step; used for seeding and for cheap hashing of seed strings. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * Stable 64-bit hash of a string, for deriving seeds from human-readable
 * identifiers such as chip serial numbers ("1308-6520").
 */
std::uint64_t hashSeed(std::string_view text);

/** Combine two seeds into a new independent seed (order-sensitive). */
std::uint64_t combineSeeds(std::uint64_t a, std::uint64_t b);

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Satisfies UniformRandomBitGenerator so it can also be handed to
 * <random> facilities, although the built-in helpers below are preferred
 * because their output is stable across standard-library versions.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Construct from a human-readable identifier. */
    explicit Rng(std::string_view seed_text);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()();

    /** Fork an independent child stream (e.g. one per BRAM). */
    Rng fork();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi], inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Standard normal deviate (Box-Muller with caching). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential deviate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Log-normal deviate: exp(N(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Bernoulli trial. */
    bool chance(double probability);

    /**
     * Poisson deviate with the given mean (Knuth for small means,
     * clamped normal approximation for large ones).
     */
    std::uint64_t poisson(double mean);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        if (items.empty())
            return;
        for (std::size_t i = items.size() - 1; i > 0; --i) {
            std::size_t j = uniformInt(0, i);
            std::swap(items[i], items[j]);
        }
    }

  private:
    std::uint64_t state_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace uvolt

#endif // UVOLT_UTIL_RNG_HH

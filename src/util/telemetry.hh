/**
 * @file
 * Process-wide telemetry: a metrics registry and scoped trace spans.
 *
 * The evaluation is a long cross product of sweeps whose interesting
 * behavior — exponential fault-rate growth near Vcrash, retry storms on
 * noisy PMBus links, die-to-die variation — is invisible in the final
 * CSVs. This layer makes it observable without touching the physics:
 *
 *  - Metrics. Counters, gauges, and fixed-bucket histograms registered
 *    by name in a process-wide Registry. Counter/histogram updates land
 *    in lock-free per-thread shards (each thread owns its slots; writes
 *    are relaxed atomics so a snapshot from another thread is racefree)
 *    and are merged only when metrics() is called. Nothing here draws
 *    from any RNG stream or reorders work, so FleetEngine's
 *    bit-identical determinism contract is untouched.
 *
 *  - Traces. UVOLT_TRACE_SCOPE("fleet.job", ...) records a wall-clock
 *    span on the current thread; spans close in LIFO order, so the
 *    per-thread stream is well-nested by construction. The collected
 *    events export as Chrome trace-event JSON (harness/report.hh) and
 *    load directly in Perfetto / chrome://tracing.
 *
 * Cost model: everything is gated on Telemetry::enabled(), a single
 * relaxed atomic load, so an instrumented hot path pays one predictable
 * branch when telemetry is off (bench/micro_perf measures < 2 %
 * overhead on the sweep inner loop). Building with -DUVOLT_TELEMETRY=OFF
 * (which defines UVOLT_TELEMETRY_DISABLED) compiles the layer out
 * entirely: the API keeps its shape, but every operation is an empty
 * inline stub and UVOLT_TRACE_SCOPE expands to nothing.
 *
 * Runtime enablement: off by default; on when the UVOLT_TELEMETRY
 * environment variable is ON/1/true at startup, or programmatically via
 * Telemetry::setEnabled().
 */

#ifndef UVOLT_UTIL_TELEMETRY_HH
#define UVOLT_UTIL_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uvolt::telemetry
{

/** Key/value annotations attached to a trace span. */
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/**
 * How a span participates in a cross-thread request flow. The exporter
 * turns these into Chrome flow events (ph:"s"/"t"/"f") bound to the
 * span, which is what draws the connecting arrows in Perfetto.
 */
enum class FlowPoint : std::uint8_t
{
    none = 0, ///< plain span, no flow binding
    start,    ///< first span of a flow (one per flow id)
    step,     ///< intermediate hop (queue wait, worker segment, retry)
    finish,   ///< terminal span of a flow (one per flow id)
};

/**
 * Request-scoped linkage handed across threads. Minted where a request
 * enters the system (UvoltServer admission, FleetEngine submit) and
 * carried explicitly through queues; a worker installs it with
 * ContextScope so every span it opens joins the request's flow and
 * parents under the span that enqueued the work.
 *
 * Defined outside the compile-out guard: code that stores or passes a
 * TraceContext builds identically under -DUVOLT_TELEMETRY=OFF.
 */
struct TraceContext
{
    std::uint64_t flowId = 0; ///< request/flow id; 0 = not in a flow
    std::uint64_t spanId = 0; ///< span to parent under; 0 = root

    bool active() const { return flowId != 0; }
};

/** One completed span ("X" event in the Chrome trace format). */
struct TraceEvent
{
    const char *name = "";   ///< static string (macro call sites)
    std::uint64_t startNs = 0; ///< since the registry's epoch
    std::uint64_t durNs = 0;
    std::uint32_t tid = 0;   ///< registry-assigned thread id
    std::uint64_t spanId = 0;   ///< unique per span; 0 = unlinked
    std::uint64_t parentId = 0; ///< enclosing/enqueuing span; 0 = root
    std::uint64_t flowId = 0;   ///< request flow membership; 0 = none
    FlowPoint flowPoint = FlowPoint::none;
    TraceArgs args;
};

/**
 * One thread's active trace-span stack at a sampling instant. Produced
 * by Registry::sampleSpanStacks() for the profiler: frames are the
 * static span-name strings of the thread's open TraceScopes, outermost
 * first, plus the flow id of the installed TraceContext so samples can
 * be attributed to in-flight requests. Defined outside the compile-out
 * guard so profiler data types build under -DUVOLT_TELEMETRY=OFF.
 */
struct SpanStackSnapshot
{
    std::uint32_t tid = 0;
    std::uint64_t flowId = 0;         ///< active request flow; 0 = none
    std::vector<const char *> frames; ///< static strings, outermost first
    bool truncated = false; ///< stack deeper than the sampling ceiling
};

/** Merged view of one histogram at snapshot time. */
struct HistogramSnapshot
{
    std::string name;
    std::vector<double> bounds;         ///< upper bucket bounds, ascending
    std::vector<std::uint64_t> buckets; ///< bounds.size() + 1 (overflow)
    std::uint64_t count = 0;
    double sum = 0.0;

    double mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    /**
     * Quantile estimate with linear interpolation inside the bucket the
     * rank falls in (the Prometheus histogram_quantile method). The
     * first bucket interpolates from 0 (observations are durations and
     * counts here, never negative); a rank landing in the overflow
     * bucket clamps to the last finite bound — the snapshot cannot know
     * how far beyond it the tail reaches. 0 when the histogram is
     * empty.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }
};

/** Point-in-time merge of every registered metric across all shards. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** Counter by name; 0 when never registered. */
    std::uint64_t counter(std::string_view name) const;

    /** Gauge by name; 0.0 when never registered. */
    double gauge(std::string_view name) const;

    /** Histogram by name; nullptr when never registered. */
    const HistogramSnapshot *histogram(std::string_view name) const;
};

#ifndef UVOLT_TELEMETRY_DISABLED

namespace detail
{

/** The global on/off switch (relaxed loads on every hot path). */
extern std::atomic<bool> enabledFlag;

/** Linkage computed when a scoped span opens. */
struct SpanLink
{
    std::uint64_t spanId = 0;
    std::uint64_t parentId = 0;
    std::uint64_t flowId = 0;
    FlowPoint flowPoint = FlowPoint::none;
};

/**
 * Open/close the calling thread's span stack. A span parents under the
 * innermost open span; the outermost span of a thread segment parents
 * under the installed TraceContext and becomes a flow step, which is
 * how a request's track reconnects after crossing a queue. The static
 * span name is also pushed onto the thread's lock-free name stack so
 * the sampling profiler can read the active stack from its own thread.
 */
SpanLink openSpanLink(const char *name);
void closeSpanLink();

} // namespace detail

/** The runtime switch. */
class Telemetry
{
  public:
    /** Whether recording is on: one relaxed atomic load. */
    static bool
    enabled()
    {
        return detail::enabledFlag.load(std::memory_order_relaxed);
    }

    static void
    setEnabled(bool on)
    {
        detail::enabledFlag.store(on, std::memory_order_relaxed);
    }

    /** Whether the layer is compiled in at all (UVOLT_TELEMETRY=ON). */
    static constexpr bool compiledIn() { return true; }
};

class Registry;

/** Monotonic counter handle; cheap to copy, stable for process life. */
class Counter
{
  public:
    void add(std::uint64_t n = 1);
    void increment() { add(1); }

  private:
    friend class Registry;
    explicit Counter(std::size_t id) : id_(id) {}
    std::size_t id_;
};

/** Last-write-wins scalar (not sharded; sets are rare). */
class Gauge
{
  public:
    void set(double value);

  private:
    friend class Registry;
    explicit Gauge(std::size_t id) : id_(id) {}
    std::size_t id_;
};

/** Fixed-bucket histogram handle (bounds frozen at registration). */
class Histogram
{
  public:
    void observe(double value);

  private:
    friend class Registry;
    Histogram(std::size_t id, std::vector<double> bounds)
        : id_(id), bounds_(std::move(bounds))
    {
    }
    std::size_t id_;
    std::vector<double> bounds_;
};

/**
 * The process-wide registry. Registration (counter()/gauge()/
 * histogram()) takes a mutex and deduplicates by name — call sites
 * cache the returned reference in a static, so it runs once per site.
 * Updates through the handles are lock-free per-thread shard writes.
 */
class Registry
{
  public:
    static Registry &global();

    /** Register (or look up) a counter; the reference never moves. */
    Counter &counter(std::string_view name);

    /** Register (or look up) a gauge. */
    Gauge &gauge(std::string_view name);

    /**
     * Register (or look up) a histogram with the given ascending upper
     * bucket bounds (at most 24; one overflow bucket is implicit).
     * Bounds are fully caller-chosen at registration — latency ladders
     * must reach past their workload's tail or quantile() saturates at
     * the last finite bound. Re-registering an existing name ignores
     * @a bounds: the first registration wins.
     */
    Histogram &histogram(std::string_view name,
                         const std::vector<double> &bounds);

    /** Merge every per-thread shard into one snapshot. */
    MetricsSnapshot metrics() const;

    /** Every recorded span, merged across threads, start-time order. */
    std::vector<TraceEvent> traceEvents() const;

    /**
     * Read every registered thread's active span-name stack without
     * stopping the writers (the profiler's sampler calls this ~1000x a
     * second). Each thread's frames are its open TraceScope names,
     * outermost first; threads with no open span are omitted. The read
     * is intentionally approximate at the instant a span opens or
     * closes — frame pointers are atomics over static strings, so a
     * racing sample sees a momentarily stale stack, never a torn one.
     */
    std::vector<SpanStackSnapshot> sampleSpanStacks() const;

    /**
     * Name the calling thread for trace exports ("fleet-worker-3"
     * instead of a bare tid in Perfetto). Independent of the enabled
     * flag — a name set while recording is off still labels spans
     * recorded after it is switched on.
     */
    void setThreadName(std::string name);

    /** (tid, name) for every thread that named itself, tid order. */
    std::vector<std::pair<std::uint32_t, std::string>>
    threadNames() const;

    /** Nanoseconds since the registry's epoch (trace timebase). */
    std::uint64_t nowNs() const;

    /**
     * Record a span with an explicit start (queue-wait spans measure an
     * interval that began on another thread). No-op when disabled.
     */
    void recordSpan(const char *name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, TraceArgs args = {});

    /**
     * Mint a process-unique flow id (never 0). One flow = one request's
     * journey across threads; every minting site shares this pool so
     * serve and fleet flows can never collide in one trace.
     */
    std::uint64_t mintFlowId();

    /**
     * Record a span explicitly bound to a flow: it parents under
     * @a ctx.spanId and emits a flow point at its start time. Returns
     * the new span's id (0 when disabled) so the caller can hand it to
     * the next hop as the parent.
     */
    std::uint64_t recordFlowSpan(const char *name, std::uint64_t start_ns,
                                 std::uint64_t dur_ns,
                                 const TraceContext &ctx, FlowPoint point,
                                 TraceArgs args = {});

    /** Record a span with precomputed linkage (TraceScope's dtor). */
    void recordLinkedSpan(const char *name, std::uint64_t start_ns,
                          std::uint64_t dur_ns,
                          const detail::SpanLink &link,
                          TraceArgs args = {});

    /** The calling thread's installed request context ({} if none). */
    static TraceContext currentContext();

    /** Install @a ctx on the calling thread; returns the previous one. */
    static TraceContext setCurrentContext(const TraceContext &ctx);

    /**
     * Zero every metric value and drop every recorded span, keeping all
     * registrations (call-site handle caches stay valid). Tests only.
     */
    void resetForTest();

  private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;
    friend detail::SpanLink detail::openSpanLink(const char *name);
    friend void detail::closeSpanLink();

    Registry();
    struct Impl;
    Impl *impl_; ///< leaked intentionally: usable during static dtors
};

/**
 * RAII span: records [construction, destruction) on the current thread
 * under the given (static-lifetime) name. The args callable runs only
 * when telemetry is enabled, so annotation formatting is free when off.
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *name) : name_(name)
    {
        active_ = Telemetry::enabled();
        if (active_) {
            link_ = detail::openSpanLink(name_);
            startNs_ = Registry::global().nowNs();
        }
    }

    template <typename ArgsFn>
    TraceScope(const char *name, ArgsFn &&make_args) : name_(name)
    {
        active_ = Telemetry::enabled();
        if (active_) {
            args_ = make_args();
            link_ = detail::openSpanLink(name_);
            startNs_ = Registry::global().nowNs();
        }
    }

    ~TraceScope()
    {
        if (!active_)
            return;
        detail::closeSpanLink();
        Registry &registry = Registry::global();
        registry.recordLinkedSpan(name_, startNs_,
                                  registry.nowNs() - startNs_, link_,
                                  std::move(args_));
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *name_;
    std::uint64_t startNs_ = 0;
    TraceArgs args_;
    detail::SpanLink link_;
    bool active_;
};

/**
 * RAII installation of a request context on the current thread. Opened
 * by a worker right after it dequeues an item; every TraceScope under
 * it joins the request's flow, and spans recorded on other threads in
 * between are reconnected by the exporter's flow arrows.
 */
class ContextScope
{
  public:
    explicit ContextScope(const TraceContext &ctx)
        : previous_(Registry::setCurrentContext(ctx))
    {
    }

    ~ContextScope() { Registry::setCurrentContext(previous_); }

    ContextScope(const ContextScope &) = delete;
    ContextScope &operator=(const ContextScope &) = delete;

  private:
    TraceContext previous_;
};

#define UVOLT_TELEMETRY_CAT2(a, b) a##b
#define UVOLT_TELEMETRY_CAT(a, b) UVOLT_TELEMETRY_CAT2(a, b)

/**
 * Open a span for the rest of the enclosing block:
 *
 *     UVOLT_TRACE_SCOPE("fleet.job");
 *     UVOLT_TRACE_SCOPE("fleet.job", [&] {
 *         return telemetry::TraceArgs{{"label", job.label()}};
 *     });
 */
#define UVOLT_TRACE_SCOPE(...)                                          \
    ::uvolt::telemetry::TraceScope UVOLT_TELEMETRY_CAT(                 \
        uvoltTraceScope_, __LINE__) { __VA_ARGS__ }

#else // UVOLT_TELEMETRY_DISABLED -------------------------------------

/**
 * Compiled-out build (-DUVOLT_TELEMETRY=OFF): the whole API collapses
 * to empty inline stubs so instrumented call sites compile unchanged
 * and the optimizer erases them.
 */
class Telemetry
{
  public:
    static constexpr bool enabled() { return false; }
    static void setEnabled(bool) {}
    static constexpr bool compiledIn() { return false; }
};

class Counter
{
  public:
    void add(std::uint64_t = 1) {}
    void increment() {}
};

class Gauge
{
  public:
    void set(double) {}
};

class Histogram
{
  public:
    void observe(double) {}
};

class Registry
{
  public:
    static Registry &global();
    Counter &counter(std::string_view) { return counter_; }
    Gauge &gauge(std::string_view) { return gauge_; }
    Histogram &histogram(std::string_view, const std::vector<double> &)
    {
        return histogram_;
    }
    MetricsSnapshot metrics() const { return {}; }
    std::vector<TraceEvent> traceEvents() const { return {}; }
    std::vector<SpanStackSnapshot> sampleSpanStacks() const
    {
        return {};
    }
    void setThreadName(std::string) {}
    std::vector<std::pair<std::uint32_t, std::string>>
    threadNames() const
    {
        return {};
    }
    std::uint64_t nowNs() const { return 0; }
    void recordSpan(const char *, std::uint64_t, std::uint64_t,
                    TraceArgs = {})
    {
    }
    std::uint64_t mintFlowId() { return 0; }
    std::uint64_t recordFlowSpan(const char *, std::uint64_t,
                                 std::uint64_t, const TraceContext &,
                                 FlowPoint, TraceArgs = {})
    {
        return 0;
    }
    static TraceContext currentContext() { return {}; }
    static TraceContext setCurrentContext(const TraceContext &)
    {
        return {};
    }
    void resetForTest() {}

  private:
    Counter counter_;
    Gauge gauge_;
    Histogram histogram_;
};

class ContextScope
{
  public:
    explicit ContextScope(const TraceContext &) {}
    ContextScope(const ContextScope &) = delete;
    ContextScope &operator=(const ContextScope &) = delete;
};

#define UVOLT_TRACE_SCOPE(...) ((void)0)

#endif // UVOLT_TELEMETRY_DISABLED

/** Shorthand for Registry::global().nowNs(). */
inline std::uint64_t
nowNs()
{
    return Registry::global().nowNs();
}

/** Shorthand for Registry::global().recordSpan(...). */
inline void
recordSpan(const char *name, std::uint64_t start_ns, std::uint64_t dur_ns,
           TraceArgs args = {})
{
    Registry::global().recordSpan(name, start_ns, dur_ns,
                                  std::move(args));
}

/** Shorthand for Registry::global().setThreadName(...). */
inline void
setCurrentThreadName(std::string name)
{
    Registry::global().setThreadName(std::move(name));
}

/** Shorthand for Registry::global().mintFlowId(). */
inline std::uint64_t
mintFlowId()
{
    return Registry::global().mintFlowId();
}

/** Shorthand for Registry::global().recordFlowSpan(...). */
inline std::uint64_t
recordFlowSpan(const char *name, std::uint64_t start_ns,
               std::uint64_t dur_ns, const TraceContext &ctx,
               FlowPoint point, TraceArgs args = {})
{
    return Registry::global().recordFlowSpan(name, start_ns, dur_ns, ctx,
                                             point, std::move(args));
}

/** Shorthand for Registry::currentContext(). */
inline TraceContext
currentContext()
{
    return Registry::currentContext();
}

} // namespace uvolt::telemetry

#endif // UVOLT_UTIL_TELEMETRY_HH

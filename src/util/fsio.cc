#include "util/fsio.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace uvolt
{

Expected<void>
writeFileAtomic(const std::string &path, std::string_view content,
                Errc error_code)
{
    const std::filesystem::path destination(path);
    if (destination.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(destination.parent_path(),
                                            ec);
    }

    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return makeError(error_code,
                             "cannot open '{}' for writing", temp);
        }
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            std::error_code ec;
            std::filesystem::remove(temp, ec);
            return makeError(error_code, "short write to '{}'", temp);
        }
    }

    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::error_code ec;
        std::filesystem::remove(temp, ec);
        return makeError(error_code, "cannot rename '{}' over '{}'",
                         temp, path);
    }
    return {};
}

Expected<void>
appendFileRecord(const std::string &path, std::string_view record,
                 Errc error_code)
{
    const std::filesystem::path destination(path);
    if (destination.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(destination.parent_path(),
                                            ec);
    }

    std::string line(record);
    if (line.empty() || line.back() != '\n')
        line.push_back('\n');

    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        return makeError(error_code, "cannot open '{}' for appending",
                         path);
    }
    // One write() call: O_APPEND makes the offset advance atomic, and a
    // single syscall keeps the record contiguous under concurrency.
    const ssize_t written = ::write(fd, line.data(), line.size());
    ::close(fd);
    if (written != static_cast<ssize_t>(line.size())) {
        return makeError(error_code, "short append to '{}' ({} of {})",
                         path, static_cast<long long>(written),
                         line.size());
    }
    return {};
}

} // namespace uvolt

#include "util/fsio.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace uvolt
{

Expected<void>
writeFileAtomic(const std::string &path, std::string_view content,
                Errc error_code)
{
    const std::filesystem::path destination(path);
    if (destination.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(destination.parent_path(),
                                            ec);
    }

    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return makeError(error_code,
                             "cannot open '{}' for writing", temp);
        }
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            std::error_code ec;
            std::filesystem::remove(temp, ec);
            return makeError(error_code, "short write to '{}'", temp);
        }
    }

    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::error_code ec;
        std::filesystem::remove(temp, ec);
        return makeError(error_code, "cannot rename '{}' over '{}'",
                         temp, path);
    }
    return {};
}

} // namespace uvolt

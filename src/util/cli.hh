/**
 * @file
 * Minimal command-line flag parsing for the examples and bench binaries.
 *
 * Supports "--name value", "--name=value", and boolean "--name" forms,
 * with typed accessors and an automatically generated --help text.
 */

#ifndef UVOLT_UTIL_CLI_HH
#define UVOLT_UTIL_CLI_HH

#include <map>
#include <string>
#include <vector>

#include "util/error.hh"

namespace uvolt
{

/** Declarative command-line parser. */
class CliParser
{
  public:
    /** @param description one-line program description for --help. */
    explicit CliParser(std::string description);

    /** Declare a string flag with a default. */
    void addString(const std::string &name, const std::string &default_value,
                   const std::string &help);

    /** Declare a floating-point flag with a default. */
    void addDouble(const std::string &name, double default_value,
                   const std::string &help);

    /** Declare an integer flag with a default. */
    void addInt(const std::string &name, long default_value,
                const std::string &help);

    /** Declare a boolean flag (defaults to false; presence sets true). */
    void addBool(const std::string &name, const std::string &help);

    /**
     * Parse argv. Returns false if --help was requested (help is printed)
     * and exits with fatal() on malformed or unknown flags.
     */
    bool parse(int argc, char **argv);

    /**
     * Recoverable parse: an undeclared "--flag" or a flag missing its
     * value comes back as an Errc::unknownFlag Error instead of
     * terminating, so services and CI wrappers can report a typo'd
     * flag through their own channel. Success mirrors parse():
     * true = proceed, false = --help was printed.
     */
    Expected<bool> tryParse(int argc, char **argv);

    std::string getString(const std::string &name) const;
    double getDouble(const std::string &name) const;
    long getInt(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Positional (non-flag) arguments, in order. */
    const std::vector<std::string> &positional() const { return positional_; }

  private:
    enum class Kind { String, Double, Int, Bool };

    struct Flag
    {
        Kind kind;
        std::string value;
        std::string defaultValue;
        std::string help;
    };

    const Flag &find(const std::string &name, Kind kind) const;
    void printHelp() const;

    std::string description_;
    std::string program_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> positional_;
};

} // namespace uvolt

#endif // UVOLT_UTIL_CLI_HH

#include "util/telemetry.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "util/logging.hh"

namespace uvolt::telemetry
{

std::uint64_t
MetricsSnapshot::counter(std::string_view name) const
{
    for (const auto &[key, value] : counters) {
        if (key == name)
            return value;
    }
    return 0;
}

double
MetricsSnapshot::gauge(std::string_view name) const
{
    for (const auto &[key, value] : gauges) {
        if (key == name)
            return value;
    }
    return 0.0;
}

const HistogramSnapshot *
MetricsSnapshot::histogram(std::string_view name) const
{
    for (const auto &histogram : histograms) {
        if (histogram.name == name)
            return &histogram;
    }
    return nullptr;
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0 || bounds.empty())
        return 0.0;
    // NaN-proof clamp, mirroring util::quantile().
    if (!(q > 0.0))
        q = 0.0;
    else if (q >= 1.0)
        q = 1.0;
    const double rank = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        const std::uint64_t in_bucket = buckets[b];
        if (in_bucket == 0)
            continue; // skip empty buckets: q=0 must land on the low
                      // edge of the first bucket that holds samples
        if (static_cast<double>(cumulative + in_bucket) < rank) {
            cumulative += in_bucket;
            continue;
        }
        if (b >= bounds.size()) // overflow bucket: clamp to last bound
            return bounds.back();
        const double low = b == 0 ? 0.0 : bounds[b - 1];
        const double high = bounds[b];
        const double within =
            (rank - static_cast<double>(cumulative)) /
            static_cast<double>(in_bucket);
        return low + (high - low) * within;
    }
    return bounds.back();
}

#ifndef UVOLT_TELEMETRY_DISABLED

namespace
{

/** Registration ceilings: descriptors are fixed arrays so per-thread
 *  shards never grow (growth would race with lock-free writers). */
constexpr std::size_t maxCounters = 256;
constexpr std::size_t maxGauges = 64;
constexpr std::size_t maxHistograms = 64;
constexpr std::size_t maxHistogramBounds = 24;
constexpr std::size_t histogramSlots = maxHistogramBounds + 1;

/** Sampled span stacks deeper than this report truncated (the sweep
 *  nests 3-4 deep; 32 leaves an order of magnitude of headroom). */
constexpr std::size_t spanStackDepth = 32;

/** Per-thread trace buffer ceiling; drops are counted, not fatal. */
constexpr std::size_t maxTraceEventsPerThread = 1u << 20;

bool
envEnabled()
{
    const char *value = std::getenv("UVOLT_TELEMETRY");
    if (!value)
        return false;
    return std::strcmp(value, "1") == 0 || std::strcmp(value, "ON") == 0 ||
           std::strcmp(value, "on") == 0 ||
           std::strcmp(value, "true") == 0;
}

/** Lock-free add for a double accumulator (shared with snapshots). */
void
atomicAdd(std::atomic<double> &total, double value)
{
    double current = total.load(std::memory_order_relaxed);
    while (!total.compare_exchange_weak(current, current + value,
                                        std::memory_order_relaxed))
        ;
}

/**
 * One thread's shard: the thread is the only writer of every slot, so
 * writes are relaxed atomics (no RMW contention) and a concurrent
 * snapshot reading relaxed sees a consistent-enough merge without any
 * lock on the hot path.
 */
struct ThreadState
{
    std::uint32_t tid = 0;

    /** Perfetto label; guarded by the registry mutex, not the owner. */
    std::string name;

    std::array<std::atomic<std::uint64_t>, maxCounters> counters{};

    struct HistogramShard
    {
        std::array<std::atomic<std::uint64_t>, histogramSlots> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
    };
    std::array<HistogramShard, maxHistograms> histograms{};

    /** Span buffer; the owning thread appends, snapshots copy. */
    std::mutex traceMutex;
    std::vector<TraceEvent> trace;
    std::atomic<std::uint64_t> traceDropped{0};

    /**
     * Active span-name stack, readable from the profiler's sampler
     * thread. The owning thread stores the name slot first, then
     * release-stores the new depth; a sampler acquire-loading the depth
     * therefore sees valid static-string pointers in [0, depth). Slots
     * are atomics so a sample racing a push/pop reads a momentarily
     * stale pointer, never a torn one.
     */
    std::array<std::atomic<const char *>, spanStackDepth> spanNames{};
    std::atomic<std::uint32_t> spanDepth{0};

    /** Flow id of the installed TraceContext (sampler attribution). */
    std::atomic<std::uint64_t> activeFlow{0};
};

} // namespace

namespace
{

/**
 * Shared pool for span and flow ids, never 0. One atomic for the whole
 * process keeps ids unique across every minting site (serve admission,
 * fleet submit, scoped spans) so no two flows can alias in a trace.
 */
std::atomic<std::uint64_t> nextLinkId{1};

std::uint64_t
mintLinkId()
{
    return nextLinkId.fetch_add(1, std::memory_order_relaxed);
}

/** The calling thread's installed request context. */
thread_local TraceContext tlsContext;

/** Ids of the calling thread's open TraceScopes, innermost last. */
thread_local std::vector<std::uint64_t> tlsSpanStack;

} // namespace

namespace detail
{

std::atomic<bool> enabledFlag{envEnabled()};

} // namespace detail

struct Registry::Impl
{
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();

    mutable std::mutex mutex; ///< registrations + the shard list

    std::vector<std::string> counterNames;
    std::vector<std::unique_ptr<Counter>> counterHandles;

    std::vector<std::string> gaugeNames;
    std::vector<std::unique_ptr<Gauge>> gaugeHandles;
    std::array<std::atomic<std::uint64_t>, maxGauges> gaugeBits{};

    std::vector<std::string> histogramNames;
    std::vector<std::vector<double>> histogramBounds;
    std::vector<std::unique_ptr<Histogram>> histogramHandles;

    /** Shards stay alive past thread exit so their counts persist. */
    std::vector<std::shared_ptr<ThreadState>> states;
    std::uint32_t nextTid = 0;

    ThreadState &
    threadState()
    {
        thread_local std::shared_ptr<ThreadState> local;
        if (!local) {
            local = std::make_shared<ThreadState>();
            std::lock_guard lock(mutex);
            local->tid = nextTid++;
            states.push_back(local);
        }
        return *local;
    }
};

Registry::Registry() : impl_(new Impl) {}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

namespace detail
{

SpanLink
openSpanLink(const char *name)
{
    SpanLink link;
    link.spanId = mintLinkId();
    link.flowId = tlsContext.flowId;
    if (tlsSpanStack.empty()) {
        // Outermost span of this thread segment: parent under the
        // installed cross-thread context and mark the flow hop.
        link.parentId = tlsContext.spanId;
        link.flowPoint = link.flowId ? FlowPoint::step : FlowPoint::none;
    } else {
        link.parentId = tlsSpanStack.back();
        link.flowPoint = FlowPoint::none;
    }
    tlsSpanStack.push_back(link.spanId);
    // Publish the name to the sampler-readable stack: slot first, then
    // a release-store of the grown depth (the sampler acquire-loads
    // depth, so frames below it are always valid pointers).
    ThreadState &state = Registry::global().impl_->threadState();
    const std::uint32_t depth =
        state.spanDepth.load(std::memory_order_relaxed);
    if (depth < spanStackDepth)
        state.spanNames[depth].store(name, std::memory_order_relaxed);
    state.spanDepth.store(depth + 1, std::memory_order_release);
    return link;
}

void
closeSpanLink()
{
    if (!tlsSpanStack.empty())
        tlsSpanStack.pop_back();
    ThreadState &state = Registry::global().impl_->threadState();
    const std::uint32_t depth =
        state.spanDepth.load(std::memory_order_relaxed);
    if (depth > 0)
        state.spanDepth.store(depth - 1, std::memory_order_release);
}

} // namespace detail

Counter &
Registry::counter(std::string_view name)
{
    std::lock_guard lock(impl_->mutex);
    for (std::size_t i = 0; i < impl_->counterNames.size(); ++i) {
        if (impl_->counterNames[i] == name)
            return *impl_->counterHandles[i];
    }
    if (impl_->counterNames.size() >= maxCounters)
        fatal("telemetry: counter budget ({}) exhausted registering '{}'",
              maxCounters, std::string(name));
    impl_->counterNames.emplace_back(name);
    impl_->counterHandles.emplace_back(
        new Counter(impl_->counterNames.size() - 1));
    return *impl_->counterHandles.back();
}

Gauge &
Registry::gauge(std::string_view name)
{
    std::lock_guard lock(impl_->mutex);
    for (std::size_t i = 0; i < impl_->gaugeNames.size(); ++i) {
        if (impl_->gaugeNames[i] == name)
            return *impl_->gaugeHandles[i];
    }
    if (impl_->gaugeNames.size() >= maxGauges)
        fatal("telemetry: gauge budget ({}) exhausted registering '{}'",
              maxGauges, std::string(name));
    impl_->gaugeNames.emplace_back(name);
    impl_->gaugeHandles.emplace_back(
        new Gauge(impl_->gaugeNames.size() - 1));
    return *impl_->gaugeHandles.back();
}

Histogram &
Registry::histogram(std::string_view name,
                    const std::vector<double> &bounds)
{
    std::lock_guard lock(impl_->mutex);
    for (std::size_t i = 0; i < impl_->histogramNames.size(); ++i) {
        if (impl_->histogramNames[i] == name)
            return *impl_->histogramHandles[i];
    }
    if (impl_->histogramNames.size() >= maxHistograms)
        fatal("telemetry: histogram budget ({}) exhausted registering "
              "'{}'",
              maxHistograms, std::string(name));
    if (bounds.empty() || bounds.size() > maxHistogramBounds)
        fatal("telemetry: histogram '{}' needs 1..{} bucket bounds, got "
              "{}",
              std::string(name), maxHistogramBounds, bounds.size());
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        fatal("telemetry: histogram '{}' bounds must ascend",
              std::string(name));
    impl_->histogramNames.emplace_back(name);
    impl_->histogramBounds.push_back(bounds);
    impl_->histogramHandles.emplace_back(
        new Histogram(impl_->histogramNames.size() - 1, bounds));
    return *impl_->histogramHandles.back();
}

MetricsSnapshot
Registry::metrics() const
{
    MetricsSnapshot snapshot;
    std::lock_guard lock(impl_->mutex);

    snapshot.counters.reserve(impl_->counterNames.size());
    for (std::size_t i = 0; i < impl_->counterNames.size(); ++i) {
        std::uint64_t total = 0;
        for (const auto &state : impl_->states)
            total += state->counters[i].load(std::memory_order_relaxed);
        snapshot.counters.emplace_back(impl_->counterNames[i], total);
    }

    snapshot.gauges.reserve(impl_->gaugeNames.size());
    for (std::size_t i = 0; i < impl_->gaugeNames.size(); ++i) {
        const std::uint64_t bits =
            impl_->gaugeBits[i].load(std::memory_order_relaxed);
        double value;
        static_assert(sizeof(value) == sizeof(bits));
        std::memcpy(&value, &bits, sizeof(value));
        snapshot.gauges.emplace_back(impl_->gaugeNames[i], value);
    }

    snapshot.histograms.reserve(impl_->histogramNames.size());
    for (std::size_t i = 0; i < impl_->histogramNames.size(); ++i) {
        HistogramSnapshot merged;
        merged.name = impl_->histogramNames[i];
        merged.bounds = impl_->histogramBounds[i];
        merged.buckets.assign(merged.bounds.size() + 1, 0);
        for (const auto &state : impl_->states) {
            const auto &shard = state->histograms[i];
            for (std::size_t b = 0; b < merged.buckets.size(); ++b) {
                merged.buckets[b] +=
                    shard.buckets[b].load(std::memory_order_relaxed);
            }
            merged.count += shard.count.load(std::memory_order_relaxed);
            merged.sum += shard.sum.load(std::memory_order_relaxed);
        }
        snapshot.histograms.push_back(std::move(merged));
    }
    return snapshot;
}

std::vector<TraceEvent>
Registry::traceEvents() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard lock(impl_->mutex);
        for (const auto &state : impl_->states) {
            std::lock_guard trace_lock(state->traceMutex);
            events.insert(events.end(), state->trace.begin(),
                          state->trace.end());
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.startNs != b.startNs)
                             return a.startNs < b.startNs;
                         // Longer span first: parents open before their
                         // children when timestamps tie.
                         return a.durNs > b.durNs;
                     });
    return events;
}

std::vector<SpanStackSnapshot>
Registry::sampleSpanStacks() const
{
    std::vector<SpanStackSnapshot> stacks;
    std::lock_guard lock(impl_->mutex);
    for (const auto &state : impl_->states) {
        const std::uint32_t depth =
            state->spanDepth.load(std::memory_order_acquire);
        if (depth == 0)
            continue;
        SpanStackSnapshot sample;
        sample.tid = state->tid;
        sample.flowId =
            state->activeFlow.load(std::memory_order_relaxed);
        sample.truncated = depth > spanStackDepth;
        const std::uint32_t frames = std::min(
            depth, static_cast<std::uint32_t>(spanStackDepth));
        sample.frames.reserve(frames);
        for (std::uint32_t i = 0; i < frames; ++i) {
            const char *frame =
                state->spanNames[i].load(std::memory_order_relaxed);
            if (frame) // racing a push: slot not yet published
                sample.frames.push_back(frame);
        }
        if (!sample.frames.empty())
            stacks.push_back(std::move(sample));
    }
    return stacks;
}

void
Registry::setThreadName(std::string name)
{
    ThreadState &state = impl_->threadState();
    std::lock_guard lock(impl_->mutex);
    state.name = std::move(name);
}

std::vector<std::pair<std::uint32_t, std::string>>
Registry::threadNames() const
{
    std::vector<std::pair<std::uint32_t, std::string>> names;
    std::lock_guard lock(impl_->mutex);
    for (const auto &state : impl_->states) {
        if (!state->name.empty())
            names.emplace_back(state->tid, state->name);
    }
    return names;
}

std::uint64_t
Registry::nowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - impl_->epoch)
            .count());
}

void
Registry::recordSpan(const char *name, std::uint64_t start_ns,
                     std::uint64_t dur_ns, TraceArgs args)
{
    recordLinkedSpan(name, start_ns, dur_ns, {}, std::move(args));
}

void
Registry::recordLinkedSpan(const char *name, std::uint64_t start_ns,
                           std::uint64_t dur_ns,
                           const detail::SpanLink &link, TraceArgs args)
{
    if (!Telemetry::enabled())
        return;
    ThreadState &state = impl_->threadState();
    std::lock_guard lock(state.traceMutex);
    if (state.trace.size() >= maxTraceEventsPerThread) {
        state.traceDropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    TraceEvent event;
    event.name = name;
    event.startNs = start_ns;
    event.durNs = dur_ns;
    event.tid = state.tid;
    event.spanId = link.spanId;
    event.parentId = link.parentId;
    event.flowId = link.flowId;
    event.flowPoint = link.flowPoint;
    event.args = std::move(args);
    state.trace.push_back(std::move(event));
}

std::uint64_t
Registry::mintFlowId()
{
    return mintLinkId();
}

std::uint64_t
Registry::recordFlowSpan(const char *name, std::uint64_t start_ns,
                         std::uint64_t dur_ns, const TraceContext &ctx,
                         FlowPoint point, TraceArgs args)
{
    if (!Telemetry::enabled())
        return 0;
    detail::SpanLink link;
    link.spanId = mintLinkId();
    link.parentId = ctx.spanId;
    link.flowId = ctx.flowId;
    link.flowPoint = ctx.flowId ? point : FlowPoint::none;
    recordLinkedSpan(name, start_ns, dur_ns, link, std::move(args));
    return link.spanId;
}

TraceContext
Registry::currentContext()
{
    return tlsContext;
}

TraceContext
Registry::setCurrentContext(const TraceContext &ctx)
{
    const TraceContext previous = tlsContext;
    tlsContext = ctx;
    // Mirror the flow id into the sampler-readable shard so profile
    // samples taken on this thread attribute to the active request.
    global().impl_->threadState().activeFlow.store(
        ctx.flowId, std::memory_order_relaxed);
    return previous;
}

void
Registry::resetForTest()
{
    std::lock_guard lock(impl_->mutex);
    for (auto &state : impl_->states) {
        for (auto &slot : state->counters)
            slot.store(0, std::memory_order_relaxed);
        for (auto &shard : state->histograms) {
            for (auto &bucket : shard.buckets)
                bucket.store(0, std::memory_order_relaxed);
            shard.count.store(0, std::memory_order_relaxed);
            shard.sum.store(0.0, std::memory_order_relaxed);
        }
        std::lock_guard trace_lock(state->traceMutex);
        state->trace.clear();
        state->traceDropped.store(0, std::memory_order_relaxed);
    }
    for (auto &bits : impl_->gaugeBits)
        bits.store(0, std::memory_order_relaxed);
}

void
Counter::add(std::uint64_t n)
{
    if (!Telemetry::enabled())
        return;
    Registry::global().impl_->threadState().counters[id_].fetch_add(
        n, std::memory_order_relaxed);
}

void
Gauge::set(double value)
{
    if (!Telemetry::enabled())
        return;
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Registry::global().impl_->gaugeBits[id_].store(
        bits, std::memory_order_relaxed);
}

void
Histogram::observe(double value)
{
    if (!Telemetry::enabled())
        return;
    const std::size_t bucket = static_cast<std::size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    auto &shard =
        Registry::global().impl_->threadState().histograms[id_];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(shard.sum, value);
}

#else // UVOLT_TELEMETRY_DISABLED

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

#endif // UVOLT_TELEMETRY_DISABLED

} // namespace uvolt::telemetry

/**
 * @file
 * Minimal "{}"-style string formatting.
 *
 * The toolchain this library targets (GCC 12) does not ship <format>, so
 * this header provides the small subset the library needs: positional
 * "{}" placeholders plus the specs "{:x}", "{:0Nx}", "{:.Nf}", and
 * "{:N}" (min-width). "{{" and "}}" escape literal braces.
 */

#ifndef UVOLT_UTIL_FORMAT_HH
#define UVOLT_UTIL_FORMAT_HH

#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>

namespace uvolt
{

namespace detail
{

/** Apply one "{:spec}" to the stream, then emit the value. */
template <typename T>
void
emitFormatted(std::ostringstream &os, std::string_view spec, const T &value)
{
    std::ostringstream field;
    bool hex = false;
    if (!spec.empty() && (spec.back() == 'x' || spec.back() == 'X')) {
        hex = true;
        field << (spec.back() == 'x' ? std::nouppercase : std::uppercase);
        spec.remove_suffix(1);
    }
    if (!spec.empty() && spec.front() == '.') {
        spec.remove_prefix(1);
        std::size_t digits = 0;
        while (!spec.empty() && spec.front() >= '0' && spec.front() <= '9') {
            digits = digits * 10 + static_cast<std::size_t>(
                spec.front() - '0');
            spec.remove_prefix(1);
        }
        if (!spec.empty() && spec.front() == 'f')
            spec.remove_prefix(1);
        field << std::fixed << std::setprecision(static_cast<int>(digits));
    } else if (!spec.empty()) {
        if (spec.front() == '0') {
            field << std::setfill('0');
            spec.remove_prefix(1);
        }
        std::size_t width = 0;
        while (!spec.empty() && spec.front() >= '0' && spec.front() <= '9') {
            width = width * 10 + static_cast<std::size_t>(
                spec.front() - '0');
            spec.remove_prefix(1);
        }
        if (width)
            field << std::setw(static_cast<int>(width));
    }
    if (hex)
        field << std::hex;
    field << value;
    os << field.str();
}

inline void
formatNext(std::ostringstream &os, std::string_view &fmt)
{
    // No arguments left: copy the remainder, unescaping braces.
    while (!fmt.empty()) {
        if (fmt.size() >= 2 && (fmt.substr(0, 2) == "{{" ||
                                fmt.substr(0, 2) == "}}")) {
            os << fmt.front();
            fmt.remove_prefix(2);
        } else {
            os << fmt.front();
            fmt.remove_prefix(1);
        }
    }
}

template <typename T, typename... Rest>
void
formatNext(std::ostringstream &os, std::string_view &fmt, const T &value,
           const Rest &...rest)
{
    while (!fmt.empty()) {
        if (fmt.size() >= 2 && (fmt.substr(0, 2) == "{{" ||
                                fmt.substr(0, 2) == "}}")) {
            os << fmt.front();
            fmt.remove_prefix(2);
            continue;
        }
        if (fmt.front() == '{') {
            const auto close = fmt.find('}');
            if (close == std::string_view::npos) {
                os << fmt; // malformed; emit as-is
                fmt = {};
                return;
            }
            std::string_view spec = fmt.substr(1, close - 1);
            if (!spec.empty() && spec.front() == ':')
                spec.remove_prefix(1);
            fmt.remove_prefix(close + 1);
            emitFormatted(os, spec, value);
            formatNext(os, fmt, rest...);
            return;
        }
        os << fmt.front();
        fmt.remove_prefix(1);
    }
}

} // namespace detail

/** Format args into fmt's "{}" placeholders; extra args are ignored. */
template <typename... Args>
std::string
strFormat(std::string_view fmt, const Args &...args)
{
    std::ostringstream os;
    detail::formatNext(os, fmt, args...);
    return os.str();
}

} // namespace uvolt

#endif // UVOLT_UTIL_FORMAT_HH

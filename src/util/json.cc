#include "util/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/format.hh"
#include "util/logging.hh"

namespace uvolt::json
{

std::string
escaped(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strFormat("\\u{:04x}", static_cast<int>(c));
            else
                out.push_back(c);
        }
    }
    return out;
}

namespace
{

const char *
kindName(Value::Kind kind)
{
    switch (kind) {
      case Value::Kind::Null:
        return "null";
      case Value::Kind::Bool:
        return "bool";
      case Value::Kind::Number:
        return "number";
      case Value::Kind::String:
        return "string";
      case Value::Kind::Array:
        return "array";
      case Value::Kind::Object:
        return "object";
    }
    return "?";
}

} // namespace

/** Strict recursive-descent parser over the whole document. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Expected<Value>
    document()
    {
        Value root;
        if (auto parsed = value(root); !parsed.ok())
            return parsed.error();
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after the document");
        return root;
    }

  private:
    Expected<void>
    value(Value &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.kind_ = Value::Kind::String;
            return string(out.string_);
        }
        if (c == 't' || c == 'f')
            return boolean(out);
        if (c == 'n') {
            if (text_.substr(pos_, 4) != "null")
                return fail("expected 'null'");
            pos_ += 4;
            out.kind_ = Value::Kind::Null;
            return {};
        }
        return number(out);
    }

    Expected<void>
    object(Value &out)
    {
        out.kind_ = Value::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return {};
        }
        while (true) {
            skipSpace();
            std::string key;
            if (auto parsed = string(key); !parsed.ok())
                return parsed.error();
            skipSpace();
            if (peek() != ':')
                return fail("expected ':' after object key");
            ++pos_;
            Value member;
            if (auto parsed = value(member); !parsed.ok())
                return parsed.error();
            out.members_.emplace_back(std::move(key), std::move(member));
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return {};
            }
            return fail("expected ',' or '}' in object");
        }
    }

    Expected<void>
    array(Value &out)
    {
        out.kind_ = Value::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return {};
        }
        while (true) {
            Value item;
            if (auto parsed = value(item); !parsed.ok())
                return parsed.error();
            out.items_.push_back(std::move(item));
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return {};
            }
            return fail("expected ',' or ']' in array");
        }
    }

    Expected<void>
    string(std::string &out)
    {
        if (peek() != '"')
            return fail("expected '\"'");
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return {};
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"':
                    out.push_back('"');
                    break;
                  case '\\':
                    out.push_back('\\');
                    break;
                  case '/':
                    out.push_back('/');
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'b':
                    out.push_back('\b');
                    break;
                  case 'f':
                    out.push_back('\f');
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad hex digit in \\u escape");
                    }
                    // The writers only emit \u00XX control codes; wider
                    // code points would need UTF-8 expansion.
                    if (code > 0xFF)
                        return fail("\\u escape beyond \\u00ff "
                                    "unsupported");
                    out.push_back(static_cast<char>(code));
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            out.push_back(c);
        }
        return fail("unterminated string");
    }

    Expected<void>
    boolean(Value &out)
    {
        out.kind_ = Value::Kind::Bool;
        if (text_.substr(pos_, 4) == "true") {
            pos_ += 4;
            out.bool_ = true;
            return {};
        }
        if (text_.substr(pos_, 5) == "false") {
            pos_ += 5;
            out.bool_ = false;
            return {};
        }
        return fail("expected 'true' or 'false'");
    }

    Expected<void>
    number(Value &out)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number '{}'", token);
        out.kind_ = Value::Kind::Number;
        out.number_ = parsed;
        return {};
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    template <typename... Args>
    Error
    fail(std::string_view fmt, Args &&...args) const
    {
        std::size_t line = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n')
                ++line;
        }
        return makeError(Errc::corruptCache, "json line {}: {}", line,
                         strFormat(fmt, std::forward<Args>(args)...));
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

Expected<Value>
Value::parse(std::string_view text)
{
    return Parser(text).document();
}

Expected<Value>
Value::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return makeError(Errc::cacheMiss, "cannot open '{}' for reading",
                         path);
    }
    std::ostringstream content;
    content << in.rdbuf();
    auto parsed = parse(content.str());
    if (!parsed.ok()) {
        return makeError(parsed.error().code, "{}: {}", path,
                         parsed.error().message);
    }
    return parsed;
}

bool
Value::boolean() const
{
    if (kind_ != Kind::Bool)
        fatal("json: boolean() on a {}", kindName(kind_));
    return bool_;
}

double
Value::number() const
{
    if (kind_ != Kind::Number)
        fatal("json: number() on a {}", kindName(kind_));
    return number_;
}

const std::string &
Value::string() const
{
    if (kind_ != Kind::String)
        fatal("json: string() on a {}", kindName(kind_));
    return string_;
}

const std::vector<Value> &
Value::items() const
{
    if (kind_ != Kind::Array)
        fatal("json: items() on a {}", kindName(kind_));
    return items_;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (kind_ != Kind::Object)
        fatal("json: members() on a {}", kindName(kind_));
    return members_;
}

const Value *
Value::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        fatal("json: find('{}') on a {}", std::string(key),
              kindName(kind_));
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const Value &
Value::at(std::string_view key) const
{
    if (const Value *value = find(key))
        return *value;
    fatal("json: object has no member '{}'", std::string(key));
}

double
Value::numberOr(std::string_view key, double fallback) const
{
    const Value *value = find(key);
    return value && value->isNumber() ? value->number() : fallback;
}

std::string
Value::stringOr(std::string_view key, const std::string &fallback) const
{
    const Value *value = find(key);
    return value && value->isString() ? value->string() : fallback;
}

} // namespace uvolt::json

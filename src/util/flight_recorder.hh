/**
 * @file
 * Flight recorder: a fixed-capacity, per-thread-sharded ring buffer of
 * recent structured events, dumped to JSON when something goes wrong.
 *
 * Tracing answers "what did this request do"; the flight recorder
 * answers "what was happening just before the process panicked / the
 * server degraded / deadlines started blowing" — post-mortem
 * visibility without always-on tracing. Producers (warn()/inform(),
 * serve health transitions, retry loops) append into their own ring
 * shard: a fixed array of fixed-size Event records, so the hot path
 * never allocates; when a shard wraps, the oldest records are
 * overwritten and counted.
 *
 * A dump (`FlightRecorder::dump("degraded")`) merges every shard in
 * global sequence order and writes `<dir>/blackbox_<reason>.json`
 * (schema "uvolt-blackbox-v1") atomically. panic() dumps automatically
 * before aborting.
 *
 * Under -DUVOLT_TELEMETRY=OFF the recorder compiles out to stubs like
 * the rest of the telemetry layer; unlike tracing, the compiled-in
 * recorder is always on — its producers are coarse (warnings, health
 * transitions, retries), never per-bitcell.
 */

#ifndef UVOLT_UTIL_FLIGHT_RECORDER_HH
#define UVOLT_UTIL_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace uvolt::flightrec
{

/** Severity of a recorded event. */
enum class Level : std::uint8_t
{
    debug = 0,
    info,
    warn,
    error,
};

/** Lowercase name for JSON/log output ("warn", "error", ...). */
const char *levelName(Level level);

/**
 * One fixed-size record. Component and message are truncating char
 * arrays so appending is a member-wise copy — no allocation, no
 * pointer chasing on the hot path.
 */
struct Event
{
    std::uint64_t seq = 0;       ///< global order stamp (1-based)
    std::uint64_t ns = 0;        ///< telemetry timebase (Registry::nowNs)
    std::uint64_t requestId = 0; ///< flow id of the active request; 0 = none
    Level level = Level::info;
    char component[16] = {};  ///< subsystem tag ("pmbus", "serve", ...)
    char message[104] = {};   ///< truncated at 103 chars
};

#ifndef UVOLT_TELEMETRY_DISABLED

/** The process-wide recorder. All methods are thread-safe. */
class FlightRecorder
{
  public:
    static FlightRecorder &global();

    /** Events each thread's ring holds before overwriting the oldest. */
    static constexpr std::size_t shardCapacity = 256;

    /**
     * Append one event to the calling thread's shard. @a request_id 0
     * means "use the installed TraceContext's flow id, if any".
     */
    void record(Level level, std::string_view component,
                std::string_view message, std::uint64_t request_id = 0);

    /** Every retained event, merged across shards, sequence order. */
    std::vector<Event> snapshot() const;

    /** Total events ever recorded / lost to ring wrap. */
    std::uint64_t recorded() const;
    std::uint64_t overwritten() const;

    /**
     * Write the current snapshot as <dir>/blackbox_<reason>.json (the
     * configured directory when @a dir is empty; reason is sanitized to
     * [a-z0-9_]). Returns the path written, or "" on failure or when
     * the ring is empty — an empty black box is noise, not evidence.
     */
    std::string dump(std::string_view reason, const std::string &dir = "");

    /** Directory dump() writes into when not overridden (default "results"). */
    void setDirectory(std::string dir);
    std::string directory() const;

    /** Paths written by dump() in this process, oldest first. */
    std::vector<std::string> dumps() const;

    /** Drop all events, counts, and the dump list. Tests only. */
    void resetForTest();

  private:
    FlightRecorder();
    struct Impl;
    Impl *impl_; ///< leaked intentionally: usable during static dtors
};

/** Shorthand for FlightRecorder::global().record(...). */
inline void
note(Level level, std::string_view component, std::string_view message,
     std::uint64_t request_id = 0)
{
    FlightRecorder::global().record(level, component, message,
                                    request_id);
}

#else // UVOLT_TELEMETRY_DISABLED -------------------------------------

class FlightRecorder
{
  public:
    static FlightRecorder &global()
    {
        static FlightRecorder recorder;
        return recorder;
    }

    static constexpr std::size_t shardCapacity = 0;

    void record(Level, std::string_view, std::string_view,
                std::uint64_t = 0)
    {
    }
    std::vector<Event> snapshot() const { return {}; }
    std::uint64_t recorded() const { return 0; }
    std::uint64_t overwritten() const { return 0; }
    std::string dump(std::string_view, const std::string & = "")
    {
        return "";
    }
    void setDirectory(std::string) {}
    std::string directory() const { return ""; }
    std::vector<std::string> dumps() const { return {}; }
    void resetForTest() {}
};

inline void
note(Level, std::string_view, std::string_view, std::uint64_t = 0)
{
}

#endif // UVOLT_TELEMETRY_DISABLED

} // namespace uvolt::flightrec

#endif // UVOLT_UTIL_FLIGHT_RECORDER_HH

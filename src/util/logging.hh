/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic convention:
 *
 *  - panic(): an internal invariant was violated (a library bug); aborts.
 *  - fatal(): the caller asked for something impossible (user error);
 *    exits with status 1.
 *  - warn()/inform(): non-fatal status messages on stderr.
 *
 * Messages use std::format-style formatting.
 */

#ifndef UVOLT_UTIL_LOGGING_HH
#define UVOLT_UTIL_LOGGING_HH

#include <string>
#include <string_view>

#include "util/format.hh"

namespace uvolt
{

namespace detail
{

[[noreturn]] void panicImpl(std::string_view message);
[[noreturn]] void fatalImpl(std::string_view message);
void warnImpl(std::string_view message);
void informImpl(std::string_view message);

} // namespace detail

/** Abort: an invariant the library itself guarantees was violated. */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args &&...args)
{
    detail::panicImpl(strFormat(fmt, std::forward<Args>(args)...));
}

/** Exit(1): the simulation cannot continue because of a caller error. */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args &&...args)
{
    detail::fatalImpl(strFormat(fmt, std::forward<Args>(args)...));
}

/** Non-fatal warning on stderr. */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    detail::warnImpl(strFormat(fmt, std::forward<Args>(args)...));
}

/** Informational status message on stderr. */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    detail::informImpl(strFormat(fmt, std::forward<Args>(args)...));
}

/** Suppress / restore inform() output (tests keep their logs quiet). */
void setQuiet(bool quiet);

} // namespace uvolt

#endif // UVOLT_UTIL_LOGGING_HH

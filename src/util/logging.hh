/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic convention:
 *
 *  - panic(): an internal invariant was violated (a library bug); dumps
 *    the flight recorder, then aborts.
 *  - fatal(): the caller asked for something impossible (user error);
 *    exits with status 1.
 *  - warn()/inform(): non-fatal status messages on stderr. The tagged
 *    variants warnc()/informc() name the emitting subsystem; every
 *    message (tagged or not) is also appended to the flight recorder
 *    (util/flight_recorder.hh), so a later black-box dump carries the
 *    full recent history even when stderr was rate-limited.
 *
 * Rate limiting: stderr warnings are throttled per component by a token
 * bucket (a sustained PMBus NACK storm prints a handful of lines plus a
 * "(+N similar suppressed)" summary instead of one line per retry).
 * fatal()/panic() are never throttled. The flight recorder sees every
 * message regardless — suppression is a stderr policy, not data loss.
 *
 * Messages use std::format-style formatting.
 */

#ifndef UVOLT_UTIL_LOGGING_HH
#define UVOLT_UTIL_LOGGING_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "util/format.hh"

namespace uvolt
{

namespace detail
{

[[noreturn]] void panicImpl(std::string_view message);
[[noreturn]] void fatalImpl(std::string_view message);
void warnImpl(std::string_view component, std::string_view message);
void informImpl(std::string_view component, std::string_view message);

} // namespace detail

/** Abort: an invariant the library itself guarantees was violated. */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args &&...args)
{
    detail::panicImpl(strFormat(fmt, std::forward<Args>(args)...));
}

/** Exit(1): the simulation cannot continue because of a caller error. */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args &&...args)
{
    detail::fatalImpl(strFormat(fmt, std::forward<Args>(args)...));
}

/** Component-tagged warning: "warn: [pmbus] ..." on stderr. */
template <typename... Args>
void
warnc(std::string_view component, std::string_view fmt, Args &&...args)
{
    detail::warnImpl(component,
                     strFormat(fmt, std::forward<Args>(args)...));
}

/** Non-fatal warning on stderr (untagged; uses the "app" component). */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    detail::warnImpl("app", strFormat(fmt, std::forward<Args>(args)...));
}

/** Component-tagged informational message. */
template <typename... Args>
void
informc(std::string_view component, std::string_view fmt, Args &&...args)
{
    detail::informImpl(component,
                       strFormat(fmt, std::forward<Args>(args)...));
}

/** Informational status message on stderr. */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    detail::informImpl("app",
                       strFormat(fmt, std::forward<Args>(args)...));
}

/** Suppress / restore inform() output (tests keep their logs quiet). */
void setQuiet(bool quiet);

/** Lines printed vs. swallowed by the per-component token bucket. */
struct LogStats
{
    std::uint64_t emitted = 0;
    std::uint64_t suppressed = 0;
};

/** Process-wide stderr throttling stats (monotonic). */
LogStats logStats();

/** Turn the stderr token bucket off/on (tests; default on). */
void setLogRateLimit(bool on);

} // namespace uvolt

#endif // UVOLT_UTIL_LOGGING_HH

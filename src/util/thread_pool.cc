#include "util/thread_pool.hh"

#include <algorithm>
#include <utility>

#include "util/format.hh"
#include "util/telemetry.hh"

namespace uvolt
{

ThreadPool::ThreadPool(std::size_t workers,
                       const std::string &name_prefix)
{
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back(
            [this, name = strFormat("{}-{}", name_prefix, i)]() mutable {
                telemetry::setCurrentThreadName(std::move(name));
                workerLoop();
            });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (workers_.empty()) {
        // Serial pool: the caller is the worker, but exception
        // semantics match the parallel path — the batch fails at the
        // next wait(), not at the submit() that happened to throw.
        try {
            job();
        } catch (...) {
            std::unique_lock lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        return;
    }
    {
        std::unique_lock lock(mutex_);
        queue_.push_back(std::move(job));
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
    if (firstError_) {
        auto error = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

std::size_t
ThreadPool::hardwareWorkers()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::workerLoop()
{
    std::unique_lock lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        auto job = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        lock.unlock();
        std::exception_ptr error;
        try {
            job();
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error && !firstError_)
            firstError_ = std::move(error);
        --running_;
        if (queue_.empty() && running_ == 0)
            idle_.notify_all();
    }
}

} // namespace uvolt

/**
 * @file
 * Crash-atomic file writes.
 *
 * Several artifacts in this repo are load-bearing across process
 * restarts: sweep checkpoints (resume after host death), ledger
 * manifests (run provenance), cached FVMs (characterize once). A crash
 * mid-write — including the spurious-crash class the fault injector
 * models — must never leave a truncated file that poisons the next
 * process's resume path. The fix is the classic one: write the full
 * content to "<path>.tmp" in the same directory, flush, then rename
 * over the destination. rename(2) within a filesystem is atomic, so
 * readers observe either the old file or the new one, never a prefix.
 */

#ifndef UVOLT_UTIL_FSIO_HH
#define UVOLT_UTIL_FSIO_HH

#include <string>
#include <string_view>

#include "util/error.hh"

namespace uvolt
{

/**
 * Write @a content to @a path crash-atomically: parent directories are
 * created, the bytes land in "<path>.tmp", and the temp file is renamed
 * over @a path only after a successful full write. On any failure the
 * temp file is removed and the previous @a path content (if any) is
 * left untouched. I/O failures come back as an Error carrying
 * @a error_code so callers keep their own taxonomy (e.g. the ledger
 * reports cacheMiss, exactly as its non-atomic writes did).
 */
Expected<void> writeFileAtomic(const std::string &path,
                               std::string_view content,
                               Errc error_code = Errc::cacheMiss);

/**
 * Append one record to @a path in a single O_APPEND write. POSIX
 * guarantees the kernel serializes the offset advance for O_APPEND
 * writes, so concurrent appenders (parallel bench runs stamping the
 * same timeline) interleave whole records — never torn or overlapping
 * lines. A trailing newline is added when @a record does not end with
 * one; parent directories are created. Built for line-oriented logs
 * (timeline.jsonl); the atomicity claim holds for records well under
 * the pipe-buffer bound, which a one-line JSON row always is.
 */
Expected<void> appendFileRecord(const std::string &path,
                                std::string_view record,
                                Errc error_code = Errc::cacheMiss);

} // namespace uvolt

#endif // UVOLT_UTIL_FSIO_HH

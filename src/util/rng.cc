#include "util/rng.hh"

#include <cmath>

namespace uvolt
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
hashSeed(std::string_view text)
{
    // FNV-1a folded through one SplitMix64 step for avalanche.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return splitMix64(h);
}

std::uint64_t
combineSeeds(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    return splitMix64(s);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

Rng::Rng(std::string_view seed_text) : Rng(hashSeed(seed_text)) {}

std::uint64_t
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    const std::uint64_t span = hi - lo + 1;
    if (span == 0)
        return (*this)(); // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % span);
    std::uint64_t x;
    do {
        x = (*this)();
    } while (x > limit);
    return lo + (x % span);
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    // Box-Muller; u1 in (0,1] to keep the log finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * M_PI * u2;
    cachedGaussian_ = radius * std::sin(angle);
    hasCachedGaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    return -std::log(1.0 - uniform()) / rate;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

bool
Rng::chance(double probability)
{
    return uniform() < probability;
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 64.0) {
        // Knuth: multiply uniforms until below exp(-mean).
        const double limit = std::exp(-mean);
        double product = 1.0;
        std::uint64_t k = 0;
        do {
            ++k;
            product *= uniform();
        } while (product > limit);
        return k - 1;
    }
    // Normal approximation, adequate for the large-mean tail here.
    double x = std::round(gaussian(mean, std::sqrt(mean)));
    return x < 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

} // namespace uvolt

#include "util/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace uvolt
{

CliParser::CliParser(std::string description)
    : description_(std::move(description))
{
}

void
CliParser::addString(const std::string &name, const std::string &default_value,
                     const std::string &help)
{
    flags_[name] = Flag{Kind::String, default_value, default_value, help};
}

void
CliParser::addDouble(const std::string &name, double default_value,
                     const std::string &help)
{
    std::string text = std::to_string(default_value);
    flags_[name] = Flag{Kind::Double, text, text, help};
}

void
CliParser::addInt(const std::string &name, long default_value,
                  const std::string &help)
{
    std::string text = std::to_string(default_value);
    flags_[name] = Flag{Kind::Int, text, text, help};
}

void
CliParser::addBool(const std::string &name, const std::string &help)
{
    flags_[name] = Flag{Kind::Bool, "0", "0", help};
}

bool
CliParser::parse(int argc, char **argv)
{
    auto parsed = tryParse(argc, argv);
    if (!parsed.ok())
        fatal("{}", parsed.error().message);
    return parsed.value();
}

Expected<bool>
CliParser::tryParse(int argc, char **argv)
{
    program_ = argc > 0 ? argv[0] : "program";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp();
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = flags_.find(name);
        if (it == flags_.end())
            return makeError(Errc::unknownFlag,
                             "unknown flag --{} (try --help)", name);
        if (it->second.kind == Kind::Bool) {
            it->second.value = has_value ? value : "1";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                return makeError(Errc::unknownFlag,
                                 "flag --{} expects a value", name);
            value = argv[++i];
        }
        it->second.value = value;
    }
    return true;
}

const CliParser::Flag &
CliParser::find(const std::string &name, Kind kind) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        panic("flag --{} accessed but never declared", name);
    if (it->second.kind != kind)
        panic("flag --{} accessed with the wrong type", name);
    return it->second;
}

std::string
CliParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

double
CliParser::getDouble(const std::string &name) const
{
    const Flag &flag = find(name, Kind::Double);
    char *end = nullptr;
    double v = std::strtod(flag.value.c_str(), &end);
    if (end == flag.value.c_str() || *end != '\0')
        fatal("flag --{} expects a number, got '{}'", name, flag.value);
    return v;
}

long
CliParser::getInt(const std::string &name) const
{
    const Flag &flag = find(name, Kind::Int);
    char *end = nullptr;
    long v = std::strtol(flag.value.c_str(), &end, 10);
    if (end == flag.value.c_str() || *end != '\0')
        fatal("flag --{} expects an integer, got '{}'", name, flag.value);
    return v;
}

bool
CliParser::getBool(const std::string &name) const
{
    const Flag &flag = find(name, Kind::Bool);
    return flag.value != "0" && flag.value != "false" && !flag.value.empty();
}

void
CliParser::printHelp() const
{
    std::printf("%s\n\nUsage: %s [flags]\n\nFlags:\n",
                description_.c_str(), program_.c_str());
    for (const auto &[name, flag] : flags_) {
        const char *kind = "";
        switch (flag.kind) {
          case Kind::String: kind = "string"; break;
          case Kind::Double: kind = "float"; break;
          case Kind::Int: kind = "int"; break;
          case Kind::Bool: kind = "bool"; break;
        }
        std::printf("  --%-22s %-7s %s (default: %s)\n", name.c_str(), kind,
                    flag.help.c_str(), flag.defaultValue.c_str());
    }
}

} // namespace uvolt

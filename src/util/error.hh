/**
 * @file
 * Recoverable-error taxonomy for the measurement path.
 *
 * The paper's methodology recovers crashed boards by reconfiguration and
 * repeats unreliable transactions; in a harsh environment those are
 * ordinary events, not program bugs. fatal()/panic() stay reserved for
 * caller errors and broken invariants; everything a retry, a soft reset,
 * or a checkpoint resume can absorb travels as an Expected<T> carrying an
 * Errc, so campaign engines can decide policy instead of dying.
 */

#ifndef UVOLT_UTIL_ERROR_HH
#define UVOLT_UTIL_ERROR_HH

#include <optional>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace uvolt
{

/** What went wrong on a recoverable path. */
enum class Errc
{
    ok = 0,
    crashDetected,     ///< DONE pin dropped (real or injected crash)
    linkExhausted,     ///< serial retransmission attempts exhausted
    pmbusExhausted,    ///< PMBus transaction retries exhausted
    verifyExhausted,   ///< setpoint verify-after-write never converged
    recoveryExhausted, ///< watchdog gave up recovering a campaign
    badCheckpoint,     ///< checkpoint failed to parse or mismatches
    cacheMiss,         ///< no cached artifact for the requested key
    corruptCache,      ///< cache file present but unusable (malformed
                       ///< or for a different chip/geometry)
    queueFull,         ///< admission control rejected: queue at capacity
    deadlineExceeded,  ///< request deadline passed before completion
    serverStopped,     ///< server draining/stopped; request not taken
    loadShed,          ///< degraded server shed low-priority work
    unknownFlag,       ///< command line used an undeclared/malformed flag
};

/** Stable short name of an error code (for messages and logs). */
const char *errcName(Errc code);

/** One recoverable error: a code plus human-readable context. */
struct [[nodiscard]] Error
{
    Errc code = Errc::ok;
    std::string message;
};

/**
 * Minimal expected-style result: either a T or an Error. Accessing the
 * wrong alternative is a library bug (panic), not a user error.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}
    Expected(Error error) : error_(std::move(error))
    {
        if (error_.code == Errc::ok)
            panic("Expected constructed from an ok Error");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    Errc code() const { return ok() ? Errc::ok : error_.code; }

    const T &
    value() const
    {
        if (!ok())
            panic("Expected::value() on error: {}", error_.message);
        return *value_;
    }

    T &
    value()
    {
        if (!ok())
            panic("Expected::value() on error: {}", error_.message);
        return *value_;
    }

    /** Move the value out (success path of a retry loop). */
    T
    take()
    {
        if (!ok())
            panic("Expected::take() on error: {}", error_.message);
        return std::move(*value_);
    }

    const Error &
    error() const
    {
        if (ok())
            panic("Expected::error() on a success value");
        return error_;
    }

    /** Unwrap for callers with no recovery policy: fatal() on error. */
    T
    orFatal() &&
    {
        if (!ok())
            fatal("{}", error_.message);
        return std::move(*value_);
    }

  private:
    std::optional<T> value_;
    Error error_;
};

/** Expected<void>: success carries no payload. */
template <>
class [[nodiscard]] Expected<void>
{
  public:
    Expected() = default;
    Expected(Error error) : error_(std::move(error))
    {
        if (error_.code == Errc::ok)
            panic("Expected constructed from an ok Error");
    }

    bool ok() const { return error_.code == Errc::ok; }
    explicit operator bool() const { return ok(); }

    Errc code() const { return error_.code; }

    const Error &
    error() const
    {
        if (ok())
            panic("Expected::error() on a success value");
        return error_;
    }

    void
    orFatal() const
    {
        if (!ok())
            fatal("{}", error_.message);
    }

  private:
    Error error_;
};

/** Build an Error with formatted context. */
template <typename... Args>
Error
makeError(Errc code, std::string_view fmt, Args &&...args)
{
    return Error{code, strFormat("[{}] {}", errcName(code),
                                 strFormat(fmt,
                                           std::forward<Args>(args)...))};
}

} // namespace uvolt

#endif // UVOLT_UTIL_ERROR_HH

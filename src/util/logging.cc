#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>

namespace uvolt
{

namespace
{

std::atomic<bool> quiet{false};

// One process-wide lock so concurrent fleet workers' messages interleave
// whole lines, never characters. fprintf to the same FILE* is not atomic
// across platforms, and ThreadSanitizer flags the unsynchronized quiet
// flag otherwise.
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
emitLine(const char *prefix, std::string_view message)
{
    std::lock_guard lock(logMutex());
    std::fprintf(stderr, "%s: %.*s\n", prefix,
                 static_cast<int>(message.size()), message.data());
}

} // namespace

namespace detail
{

void
panicImpl(std::string_view message)
{
    emitLine("panic", message);
    std::abort();
}

void
fatalImpl(std::string_view message)
{
    emitLine("fatal", message);
    std::exit(1);
}

void
warnImpl(std::string_view message)
{
    emitLine("warn", message);
}

void
informImpl(std::string_view message)
{
    if (quiet.load(std::memory_order_relaxed))
        return;
    emitLine("info", message);
}

} // namespace detail

void
setQuiet(bool value)
{
    quiet.store(value, std::memory_order_relaxed);
}

} // namespace uvolt

#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <exception>

namespace uvolt
{

namespace
{

bool quiet = false;

} // namespace

namespace detail
{

void
panicImpl(std::string_view message)
{
    std::fprintf(stderr, "panic: %.*s\n",
                 static_cast<int>(message.size()), message.data());
    std::abort();
}

void
fatalImpl(std::string_view message)
{
    std::fprintf(stderr, "fatal: %.*s\n",
                 static_cast<int>(message.size()), message.data());
    std::exit(1);
}

void
warnImpl(std::string_view message)
{
    std::fprintf(stderr, "warn: %.*s\n",
                 static_cast<int>(message.size()), message.data());
}

void
informImpl(std::string_view message)
{
    if (quiet)
        return;
    std::fprintf(stderr, "info: %.*s\n",
                 static_cast<int>(message.size()), message.data());
}

} // namespace detail

void
setQuiet(bool value)
{
    quiet = value;
}

} // namespace uvolt

#include "util/logging.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>

#include "util/flight_recorder.hh"

namespace uvolt
{

namespace
{

std::atomic<bool> quiet{false};
std::atomic<bool> rateLimit{true};
std::atomic<std::uint64_t> emittedTotal{0};
std::atomic<std::uint64_t> suppressedTotal{0};

// One process-wide lock so concurrent fleet workers' messages interleave
// whole lines, never characters. fprintf to the same FILE* is not atomic
// across platforms, and ThreadSanitizer flags the unsynchronized quiet
// flag otherwise. The token buckets share it: log emission is far off
// any hot path.
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

/**
 * Per-component token bucket: a burst of lines passes, a storm drains
 * the bucket and is swallowed; the count of swallowed lines rides out
 * on the next line that passes.
 */
struct Bucket
{
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last{};
    std::uint64_t suppressed = 0;
    bool primed = false;
};

constexpr double bucketBurst = 8.0;      ///< lines admitted back-to-back
constexpr double bucketRefillPerSec = 4.0;

std::map<std::string, Bucket, std::less<>> &
buckets()
{
    static std::map<std::string, Bucket, std::less<>> map;
    return map;
}

/**
 * Decide under logMutex() whether this component may print. On true,
 * @a suffix carries the "(+N similar suppressed)" tail when a storm
 * just ended.
 */
bool
admitLine(std::string_view component, std::string &suffix)
{
    if (!rateLimit.load(std::memory_order_relaxed))
        return true;
    auto it = buckets().find(component);
    if (it == buckets().end())
        it = buckets().emplace(std::string(component), Bucket{}).first;
    Bucket &bucket = it->second;
    const auto now = std::chrono::steady_clock::now();
    if (!bucket.primed) {
        bucket.tokens = bucketBurst;
        bucket.primed = true;
    } else {
        const double elapsed =
            std::chrono::duration<double>(now - bucket.last).count();
        bucket.tokens = std::min(bucketBurst,
                                 bucket.tokens +
                                     elapsed * bucketRefillPerSec);
    }
    bucket.last = now;
    if (bucket.tokens < 1.0) {
        ++bucket.suppressed;
        return false;
    }
    bucket.tokens -= 1.0;
    if (bucket.suppressed > 0) {
        suffix = strFormat(" (+{} similar suppressed)",
                           bucket.suppressed);
        bucket.suppressed = 0;
    }
    return true;
}

void
emitTagged(const char *prefix, std::string_view component,
           std::string_view message, bool throttle)
{
    std::lock_guard lock(logMutex());
    std::string suffix;
    if (throttle && !admitLine(component, suffix)) {
        suppressedTotal.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    emittedTotal.fetch_add(1, std::memory_order_relaxed);
    if (component.empty() || component == "app") {
        std::fprintf(stderr, "%s: %.*s%s\n", prefix,
                     static_cast<int>(message.size()), message.data(),
                     suffix.c_str());
    } else {
        std::fprintf(stderr, "%s: [%.*s] %.*s%s\n", prefix,
                     static_cast<int>(component.size()),
                     component.data(),
                     static_cast<int>(message.size()), message.data(),
                     suffix.c_str());
    }
}

} // namespace

namespace detail
{

void
panicImpl(std::string_view message)
{
    flightrec::note(flightrec::Level::error, "panic", message);
    // The black box is the point of panic(): capture the recent event
    // history before the process is gone. Best-effort — a failed dump
    // must not mask the abort.
    flightrec::FlightRecorder::global().dump("panic");
    emitTagged("panic", "app", message, /*throttle=*/false);
    std::abort();
}

void
fatalImpl(std::string_view message)
{
    flightrec::note(flightrec::Level::error, "fatal", message);
    emitTagged("fatal", "app", message, /*throttle=*/false);
    std::exit(1);
}

void
warnImpl(std::string_view component, std::string_view message)
{
    flightrec::note(flightrec::Level::warn, component, message);
    emitTagged("warn", component, message, /*throttle=*/true);
}

void
informImpl(std::string_view component, std::string_view message)
{
    flightrec::note(flightrec::Level::info, component, message);
    if (quiet.load(std::memory_order_relaxed))
        return;
    emitTagged("info", component, message, /*throttle=*/true);
}

} // namespace detail

void
setQuiet(bool value)
{
    quiet.store(value, std::memory_order_relaxed);
}

LogStats
logStats()
{
    LogStats stats;
    stats.emitted = emittedTotal.load(std::memory_order_relaxed);
    stats.suppressed = suppressedTotal.load(std::memory_order_relaxed);
    return stats;
}

void
setLogRateLimit(bool on)
{
    rateLimit.store(on, std::memory_order_relaxed);
}

} // namespace uvolt

/**
 * @file
 * A fixed-size worker pool for fleet campaigns.
 *
 * Deliberately minimal: one shared FIFO queue, a fixed number of
 * workers, no work stealing, no futures. Fleet jobs are coarse (a whole
 * characterization sweep each), so queue contention is negligible and a
 * plain mutex + condition variable is both fast enough and trivially
 * clean under ThreadSanitizer. Determinism is the caller's property:
 * jobs must not share mutable state, and result ordering comes from
 * writing into pre-assigned slots, never from completion order.
 *
 * A pool of zero workers runs every submitted job inline on the calling
 * thread — the serial reference path uses exactly the same scheduling
 * code as the parallel one.
 */

#ifndef UVOLT_UTIL_THREAD_POOL_HH
#define UVOLT_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uvolt
{

/** Fixed-size FIFO worker pool (0 workers = run jobs inline). */
class ThreadPool
{
  public:
    /**
     * Spawn @a workers threads; 0 makes submit() run jobs inline. Each
     * worker registers "<name_prefix>-<index>" as its telemetry thread
     * name, so Chrome trace exports label the pool's lanes (the default
     * matches the pool's one consumer, the fleet engine).
     */
    explicit ThreadPool(std::size_t workers,
                        const std::string &name_prefix = "fleet-worker");

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue one job. Recoverable outcomes should travel through the
     * job's own result slot as an Expected<T>; a job that throws anyway
     * fails the batch: the first escaped exception (first in completion
     * order) is captured and rethrown by the next wait(), and the
     * remaining queued jobs still run so result slots stay consistent.
     */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished running, then
     * rethrow the first exception any of them escaped with (if any).
     * Rethrowing clears the stored exception, so the pool remains
     * usable for further submit()/wait() rounds.
     */
    void wait();

    std::size_t workerCount() const { return workers_.size(); }

    /**
     * Worker count matched to the host (hardware_concurrency, at least
     * 1): the default for fleet campaigns.
     */
    static std::size_t hardwareWorkers();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;  ///< signals workers: job or shutdown
    std::condition_variable idle_;  ///< signals wait(): everything done
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t running_ = 0; ///< jobs currently executing on workers
    bool stopping_ = false;
    std::exception_ptr firstError_; ///< first job exception; see wait()
};

} // namespace uvolt

#endif // UVOLT_UTIL_THREAD_POOL_HH

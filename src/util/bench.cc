#include "util/bench.hh"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/utsname.h>
#include <thread>

#include "util/format.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/telemetry.hh"

namespace uvolt::bench
{

namespace
{

double
wallNowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Process CPU time (all threads — fan-out benches count workers). */
double
cpuNowNs()
{
    struct timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) * 1e9 +
           static_cast<double>(ts.tv_nsec);
}

struct Repeat
{
    double wallNs = 0.0; ///< per iteration
    double cpuNs = 0.0;  ///< per iteration
    std::uint64_t bytes = 0;
    std::uint64_t items = 0;
};

Repeat
runRepeat(BenchFn fn, std::uint64_t iterations)
{
    State state(iterations);
    const double cpu_start = cpuNowNs();
    const double wall_start = wallNowNs();
    fn(state);
    const double wall_ns = wallNowNs() - wall_start;
    const double cpu_ns = cpuNowNs() - cpu_start;
    Repeat repeat;
    const double iters = static_cast<double>(iterations);
    repeat.wallNs = wall_ns / iters;
    repeat.cpuNs = cpu_ns / iters;
    repeat.bytes = state.bytesPerIteration();
    repeat.items = state.itemsPerIteration();
    return repeat;
}

} // namespace

RepeatStats
summarize(const std::vector<double> &ns_per_iter)
{
    RepeatStats stats;
    if (ns_per_iter.empty())
        return stats;
    RunningStats running;
    for (double sample : ns_per_iter)
        running.add(sample);
    stats.minNs = running.minimum();
    stats.meanNs = running.mean();
    stats.stddevNs = running.stddev();
    stats.medianNs = median(ns_per_iter);
    stats.p95Ns = quantile(ns_per_iter, 0.95);
    return stats;
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

bool
Registry::add(std::string name, BenchFn fn)
{
    for (const auto &[existing, unused] : benchmarks_) {
        if (existing == name)
            fatal("bench: duplicate benchmark name '{}'", name);
    }
    benchmarks_.emplace_back(std::move(name), fn);
    return true;
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(benchmarks_.size());
    for (const auto &[name, fn] : benchmarks_)
        out.push_back(name);
    return out;
}

BenchResult
Registry::runOne(const std::string &name,
                 const BenchOptions &options) const
{
    const BenchFn *fn = nullptr;
    for (const auto &[candidate, candidate_fn] : benchmarks_) {
        if (candidate == name)
            fn = &candidate_fn;
    }
    if (!fn)
        fatal("bench: no benchmark named '{}'", name);

    BenchResult result;
    result.name = name;
    result.repeats = std::max(1, options.repeats);

    // Calibrate the per-repeat iteration count: grow geometrically
    // until one repeat reaches the time floor. The calibration runs
    // double as warmup (caches, fault-model synthesis, page faults).
    const double min_ns = std::max(0.0, options.minTimeMs) * 1e6;
    std::uint64_t iterations = 1;
    Repeat probe = runRepeat(*fn, iterations);
    // The very first iteration bears every lazy one-time cost of the
    // bench body (fault-model synthesis, page faults, cache fills) and
    // can exceed the time floor on its own, which would freeze
    // calibration at one iteration per repeat and time nothing but
    // cold starts. Probe once more warm before trusting a "one
    // iteration is enough" verdict.
    if (probe.wallNs >= min_ns)
        probe = runRepeat(*fn, iterations);
    while (probe.wallNs * static_cast<double>(iterations) < min_ns &&
           iterations < (1ull << 40)) {
        const double want = min_ns / std::max(probe.wallNs, 1e-3);
        const double grown = std::min(
            want * 1.4, static_cast<double>(iterations) * 10.0);
        iterations = std::max<std::uint64_t>(
            iterations + 1, static_cast<std::uint64_t>(grown));
        probe = runRepeat(*fn, iterations);
    }
    result.iterationsPerRepeat = iterations;

    // The timed repeats, bracketed by a telemetry snapshot so the
    // result carries the counter traffic its body generated.
    const telemetry::MetricsSnapshot before =
        telemetry::Registry::global().metrics();
    std::vector<double> wall_samples;
    std::vector<double> cpu_samples;
    wall_samples.reserve(static_cast<std::size_t>(result.repeats));
    cpu_samples.reserve(static_cast<std::size_t>(result.repeats));
    std::uint64_t bytes = probe.bytes;
    std::uint64_t items = probe.items;
    for (int r = 0; r < result.repeats; ++r) {
        const Repeat repeat = runRepeat(*fn, iterations);
        wall_samples.push_back(repeat.wallNs);
        cpu_samples.push_back(repeat.cpuNs);
        bytes = repeat.bytes;
        items = repeat.items;
    }
    const telemetry::MetricsSnapshot after =
        telemetry::Registry::global().metrics();

    for (const auto &[counter_name, value] : after.counters) {
        const std::uint64_t delta = value - before.counter(counter_name);
        if (delta)
            result.counterDeltas.emplace_back(counter_name, delta);
    }

    result.wall = summarize(wall_samples);
    result.cpu = summarize(cpu_samples);
    result.bytesPerIteration = bytes;
    result.itemsPerIteration = items;
    if (result.wall.medianNs > 0.0) {
        result.itersPerSec = 1e9 / result.wall.medianNs;
        result.bytesPerSec =
            static_cast<double>(bytes) * result.itersPerSec;
        result.itemsPerSec =
            static_cast<double>(items) * result.itersPerSec;
    }
    return result;
}

std::vector<BenchResult>
Registry::runAll(const BenchOptions &options) const
{
    std::vector<BenchResult> results;
    for (const auto &[name, fn] : benchmarks_) {
        if (!options.filter.empty() &&
            name.find(options.filter) == std::string::npos)
            continue;
        std::fprintf(stderr, "bench: %-36s ", name.c_str());
        std::fflush(stderr);
        BenchResult result = runOne(name, options);
        std::fprintf(stderr, "%12.1f ns/iter (x%llu, %d repeats)\n",
                     result.wall.medianNs,
                     static_cast<unsigned long long>(
                         result.iterationsPerRepeat),
                     result.repeats);
        results.push_back(std::move(result));
    }
    return results;
}

TextTable
resultsTable(const std::vector<BenchResult> &results)
{
    TextTable table({"benchmark", "iters", "min ns", "median ns",
                     "p95 ns", "cpu/wall", "rate"});
    for (const auto &result : results) {
        std::string rate;
        if (result.bytesPerSec > 0.0)
            rate = strFormat("{:.1f} MiB/s",
                             result.bytesPerSec / (1024.0 * 1024.0));
        else if (result.itemsPerSec > 0.0)
            rate = strFormat("{:.0f} items/s", result.itemsPerSec);
        const double ratio = result.wall.medianNs > 0.0
                                 ? result.cpu.medianNs /
                                       result.wall.medianNs
                                 : 0.0;
        table.addRow({result.name,
                      std::to_string(result.iterationsPerRepeat),
                      fmtDouble(result.wall.minNs, 1),
                      fmtDouble(result.wall.medianNs, 1),
                      fmtDouble(result.wall.p95Ns, 1),
                      fmtDouble(ratio, 2), rate});
    }
    return table;
}

std::string
buildGitSha()
{
#ifdef UVOLT_GIT_SHA
    return UVOLT_GIT_SHA;
#else
    return "unknown";
#endif
}

std::string
benchJson(const std::vector<BenchResult> &results,
          const BenchOptions &options)
{
    char host[256] = "unknown";
    (void)gethostname(host, sizeof(host) - 1);
    struct utsname uts = {};
    (void)uname(&uts);

    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"uvolt-bench-v1\",\n";
    out << "  \"git_sha\": \"" << json::escaped(buildGitSha())
        << "\",\n";
    out << "  \"machine\": {\"host\": \"" << json::escaped(host)
        << "\", \"cpus\": " << std::thread::hardware_concurrency()
        << ", \"os\": \""
        << json::escaped(strFormat("{} {}", uts.sysname, uts.release))
        << "\"},\n";
    out << "  \"telemetry_compiled_in\": "
        << (telemetry::Telemetry::compiledIn() ? "true" : "false")
        << ",\n";
    out << "  \"telemetry_enabled\": "
        << (telemetry::Telemetry::enabled() ? "true" : "false") << ",\n";
    out << "  \"options\": {\"repeats\": " << options.repeats
        << ", \"min_time_ms\": "
        << strFormat("{:.3f}", options.minTimeMs) << "},\n";
    out << "  \"benchmarks\": [";
    bool first = true;
    for (const auto &result : results) {
        out << (first ? "" : ",") << "\n    {\"name\": \""
            << json::escaped(result.name) << "\",";
        out << " \"iterations\": " << result.iterationsPerRepeat << ",";
        out << " \"repeats\": " << result.repeats << ",\n";
        auto stats = [&](const char *key, const RepeatStats &s) {
            out << "     \"" << key << "\": {\"min_ns\": "
                << strFormat("{:.3f}", s.minNs)
                << ", \"median_ns\": " << strFormat("{:.3f}", s.medianNs)
                << ", \"p95_ns\": " << strFormat("{:.3f}", s.p95Ns)
                << ", \"mean_ns\": " << strFormat("{:.3f}", s.meanNs)
                << ", \"stddev_ns\": "
                << strFormat("{:.3f}", s.stddevNs) << "}";
        };
        stats("wall", result.wall);
        out << ",\n";
        stats("cpu", result.cpu);
        out << ",\n";
        out << "     \"iters_per_sec\": "
            << strFormat("{:.3f}", result.itersPerSec);
        if (result.bytesPerIteration) {
            out << ", \"bytes_per_iteration\": "
                << result.bytesPerIteration << ", \"bytes_per_sec\": "
                << strFormat("{:.1f}", result.bytesPerSec);
        }
        if (result.itemsPerIteration) {
            out << ", \"items_per_iteration\": "
                << result.itemsPerIteration << ", \"items_per_sec\": "
                << strFormat("{:.1f}", result.itemsPerSec);
        }
        if (!result.counterDeltas.empty()) {
            out << ",\n     \"counter_deltas\": {";
            bool first_delta = true;
            for (const auto &[name, delta] : result.counterDeltas) {
                out << (first_delta ? "" : ", ") << "\""
                    << json::escaped(name) << "\": " << delta;
                first_delta = false;
            }
            out << "}";
        }
        out << "}";
        first = false;
    }
    out << "\n  ]\n}\n";
    return out.str();
}

bool
writeBenchJson(const std::vector<BenchResult> &results,
               const BenchOptions &options, const std::string &path)
{
    std::error_code ec;
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path);
    if (!out) {
        warn("could not open '{}' for writing", path);
        return false;
    }
    out << benchJson(results, options);
    return static_cast<bool>(out);
}

} // namespace uvolt::bench

/**
 * @file
 * Registration-based micro/macro benchmark framework.
 *
 * Every figure bench in this repo hand-rolled its own timing loop and
 * emitted an incomparable CSV, so the perf trajectory of the project
 * was invisible. This framework replaces that with one harness:
 *
 *     UVOLT_BENCHMARK(BM_SweepInnerLoop)
 *     {
 *         auto &board = vc707();
 *         for (auto _ : state)
 *             bench::doNotOptimize(deviceFaultPass(board));
 *         state.setBytesPerIteration(deviceBytes);
 *     }
 *
 * The runner calibrates an iteration count so each timed repeat lasts
 * at least options.minTimeMs (the calibration runs double as warmup),
 * then measures `repeats` independent repeats of wall and process-CPU
 * time. Reported statistics are min/median/p95/mean/stddev of
 * ns-per-iteration across the repeats — min is the scheduler-noise
 * floor and the default regression-gate metric; p95 shows the jitter a
 * production deployment would see. A telemetry-metrics snapshot is
 * captured around the timed repeats, so every benchmark result carries
 * the counter deltas its body generated (e.g. pmbus.setpoint.writes
 * per sweep pass) — free provenance when telemetry is enabled, all
 * zeros when it is off.
 *
 * Results export through benchJson() as the schema-versioned
 * "uvolt-bench-v1" document (machine info, git SHA, per-benchmark
 * stats) that scripts/check_regression.py diffs in CI.
 */

#ifndef UVOLT_UTIL_BENCH_HH
#define UVOLT_UTIL_BENCH_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/table.hh"

namespace uvolt::bench
{

/** Keep a value (and the computation producing it) out of the DCE. */
template <typename T>
inline void
doNotOptimize(const T &value)
{
    asm volatile("" : : "r,m"(value) : "memory");
}

/** Iteration control handed to every benchmark body. */
class State
{
  public:
    explicit State(std::uint64_t iterations)
        : target_(iterations), remaining_(iterations)
    {
    }

    /** One more iteration? (the range-for protocol calls this). */
    bool
    keepRunning()
    {
        if (remaining_ == 0)
            return false;
        --remaining_;
        return true;
    }

    struct EndSentinel
    {
    };

    /** Dereference target of the range-for protocol. The non-trivial
     *  destructor counts as a use, so `for (auto _ : state)` draws no
     *  unused-variable warning. */
    struct Tick
    {
        Tick() {}
        ~Tick() {}
    };

    class Iterator
    {
      public:
        explicit Iterator(State *state) : state_(state) {}
        bool operator!=(EndSentinel) { return state_->keepRunning(); }
        void operator++() {}
        Tick operator*() const { return {}; }

      private:
        State *state_;
    };

    Iterator begin() { return Iterator(this); }
    EndSentinel end() { return {}; }

    /** Iterations this repeat will run. */
    std::uint64_t iterations() const { return target_; }

    /** Declare a per-iteration byte volume (enables bytes/sec). */
    void setBytesPerIteration(std::uint64_t bytes) { bytes_ = bytes; }

    /** Declare a per-iteration item count (enables items/sec). */
    void setItemsPerIteration(std::uint64_t items) { items_ = items; }

    std::uint64_t bytesPerIteration() const { return bytes_; }
    std::uint64_t itemsPerIteration() const { return items_; }

  private:
    std::uint64_t target_;
    std::uint64_t remaining_;
    std::uint64_t bytes_ = 0;
    std::uint64_t items_ = 0;
};

using BenchFn = void (*)(State &);

/** Summary of one timing vector (ns per iteration across repeats). */
struct RepeatStats
{
    double minNs = 0.0;
    double medianNs = 0.0;
    double p95Ns = 0.0;
    double meanNs = 0.0;
    double stddevNs = 0.0;
};

/**
 * Reduce a vector of per-repeat ns/iteration samples. Empty input (a
 * benchmark that never ran) reduces to all zeros; a single repeat has
 * min = median = p95 = the sample.
 */
RepeatStats summarize(const std::vector<double> &ns_per_iter);

/** Everything measured for one benchmark. */
struct BenchResult
{
    std::string name;
    std::uint64_t iterationsPerRepeat = 0;
    int repeats = 0;

    RepeatStats wall; ///< wall clock, ns per iteration
    RepeatStats cpu;  ///< process CPU (all threads), ns per iteration

    /** Iterations per wall second at the median repeat. */
    double itersPerSec = 0.0;

    std::uint64_t bytesPerIteration = 0;
    std::uint64_t itemsPerIteration = 0;
    double bytesPerSec = 0.0; ///< 0 when no byte volume declared
    double itemsPerSec = 0.0; ///< 0 when no item count declared

    /**
     * Telemetry counter deltas the timed repeats generated (nonzero
     * entries only; empty when telemetry is off or the body is quiet).
     */
    std::vector<std::pair<std::string, std::uint64_t>> counterDeltas;
};

/** Runner knobs (bench_all exposes these as flags). */
struct BenchOptions
{
    int repeats = 9;           ///< timed repeats per benchmark
    double minTimeMs = 20.0;   ///< calibrated floor per repeat
    std::string filter;        ///< substring; empty = everything
};

/** The process-wide benchmark registry. */
class Registry
{
  public:
    static Registry &global();

    /** Register a benchmark (the UVOLT_BENCHMARK macro calls this). */
    bool add(std::string name, BenchFn fn);

    /** Registered names, registration order. */
    std::vector<std::string> names() const;

    /**
     * Calibrate and run every registered benchmark matching
     * options.filter, in registration order, printing one progress
     * line per benchmark to stderr.
     */
    std::vector<BenchResult> runAll(const BenchOptions &options) const;

    /** Calibrate and run one registered benchmark by exact name. */
    BenchResult runOne(const std::string &name,
                       const BenchOptions &options) const;

  private:
    Registry() = default;
    std::vector<std::pair<std::string, BenchFn>> benchmarks_;
};

/** Render results as the repo's table style (one row per benchmark). */
TextTable resultsTable(const std::vector<BenchResult> &results);

/**
 * Serialize results as the schema-versioned "uvolt-bench-v1" JSON
 * document: {schema, git_sha, machine{host,cpus,os}, telemetry
 * compiled/enabled, options, benchmarks[]}.
 */
std::string benchJson(const std::vector<BenchResult> &results,
                      const BenchOptions &options);

/** Write benchJson() to @a path (parent directories created). */
bool writeBenchJson(const std::vector<BenchResult> &results,
                    const BenchOptions &options, const std::string &path);

/** The git SHA baked in at configure time ("unknown" outside git). */
std::string buildGitSha();

/**
 * Register a benchmark and open its body:
 *
 *     UVOLT_BENCHMARK(BM_Crc16Frame)
 *     {
 *         for (auto _ : state) ...
 *     }
 */
#define UVOLT_BENCHMARK(name)                                           \
    static void name(::uvolt::bench::State &state);                     \
    static const bool uvoltBenchRegistered_##name =                     \
        ::uvolt::bench::Registry::global().add(#name, name);            \
    static void name([[maybe_unused]] ::uvolt::bench::State &state)

} // namespace uvolt::bench

#endif // UVOLT_UTIL_BENCH_HH

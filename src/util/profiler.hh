/**
 * @file
 * In-process continuous profiler over the telemetry span stacks.
 *
 * The campaigns this repo runs spend their wall time in a handful of
 * hot loops — BRAM readback, fault counting, batched inference — and
 * the serving tier multiplexes them across worker threads. Metrics say
 * *what* happened; traces say what happened *once*. This layer answers
 * the remaining question, *where does wall time go right now*, the way
 * a production profiler does: a dedicated sampler thread wakes at a
 * fixed interval (default 997 us, a prime so the cadence cannot phase-
 * lock with any periodic workload; UVOLT_PROFILE_HZ overrides), reads
 * every registered thread's active trace-span stack through
 * telemetry::Registry::sampleSpanStacks(), and accumulates folded-stack
 * counts ("sweep;sweep.level;accel.classify 412").
 *
 * Why span-stack sampling instead of signal-driven native unwinding
 * (perf, libunwind): the span stacks already exist, carry the domain
 * names an operator thinks in, cost two relaxed atomic stores per span
 * to maintain, and are readable from another thread without signals,
 * frame pointers, or a symbolizer — zero new dependencies, safe under
 * TSan, identical behavior in every build mode. The tradeoff is
 * granularity: only instrumented regions appear, which for this
 * codebase is exactly the hot loops worth seeing.
 *
 * The sampler only ever *reads*: it draws nothing from any RNG stream,
 * reorders no work, and touches no result buffer, so profiling on vs
 * off leaves every result artifact byte-identical. Under
 * -DUVOLT_TELEMETRY=OFF the whole layer compiles to stubs.
 *
 * Exports: Profile::foldedText() is the collapsed-stack format every
 * flamegraph tool consumes; harness/report.hh renders a self-contained
 * HTML flame graph; Profile::topFrames() feeds the self/total tables in
 * UvoltServer::statusReport() and serve_demo --watch.
 */

#ifndef UVOLT_UTIL_PROFILER_HH
#define UVOLT_UTIL_PROFILER_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/telemetry.hh"

namespace uvolt::profiler
{

/** Per-frame sample attribution for the top-N tables. */
struct FrameStat
{
    std::string name;
    std::uint64_t self = 0;  ///< samples with this frame on top
    std::uint64_t total = 0; ///< samples with this frame anywhere
};

/** An immutable snapshot of accumulated samples. */
struct Profile
{
    std::uint64_t intervalUs = 0; ///< sampling interval in effect
    std::uint64_t ticks = 0;      ///< sampler wakeups taken
    std::uint64_t samples = 0;    ///< thread-stacks folded in
    std::uint64_t flowSamples = 0; ///< samples inside a request flow
    std::uint64_t truncated = 0;   ///< stacks deeper than the ceiling

    /** folded key ("a;b;c") -> sample count; map order = stable text. */
    std::map<std::string, std::uint64_t> folded;

    bool empty() const { return folded.empty(); }

    /**
     * Collapsed-stack text, one "frame;frame;frame count" line per
     * distinct stack in lexicographic key order — the exact format
     * flamegraph.pl / speedscope / inferno consume.
     */
    std::string foldedText() const;

    /**
     * The @a n hottest frames ordered by self samples (then total,
     * then name). Self counts the samples where the frame was the
     * innermost open span; total counts every sample whose stack
     * contains it (recursion deduplicated).
     */
    std::vector<FrameStat> topFrames(std::size_t n) const;
};

/**
 * Fold one round of sampled stacks into @a profile (exposed separately
 * so tests can drive deterministic span sequences through the exact
 * accumulation path the sampler uses).
 */
void foldInto(Profile &profile,
              const std::vector<telemetry::SpanStackSnapshot> &stacks);

/** Write Profile::foldedText() crash-atomically; false on I/O error. */
bool writeFolded(const Profile &profile, const std::string &path);

#ifndef UVOLT_TELEMETRY_DISABLED

/**
 * The sampler. start()/stop() are idempotent and restartable; samples
 * accumulate across restarts until reset(). stop() joins the sampler
 * thread, and the destructor stops, so a scoped profiler can never
 * outlive the code it samples. The thread names itself "uvolt-profiler"
 * in the registry so traces and profiles label it.
 */
class SpanProfiler
{
  public:
    explicit SpanProfiler(std::uint64_t interval_us = intervalFromEnv());
    ~SpanProfiler();

    SpanProfiler(const SpanProfiler &) = delete;
    SpanProfiler &operator=(const SpanProfiler &) = delete;

    /** Launch the sampler thread; no-op when already running. */
    void start();

    /** Stop and join the sampler thread; no-op when already stopped. */
    void stop();

    bool running() const;

    std::uint64_t intervalUs() const { return intervalUs_; }

    /** Copy of everything accumulated so far (running or not). */
    Profile snapshot() const;

    /** Drop accumulated samples (registrations/state unaffected). */
    void reset();

    /**
     * Default interval: 997 us, or 1e6 / $UVOLT_PROFILE_HZ when the
     * variable holds a positive number (e.g. UVOLT_PROFILE_HZ=2000 ->
     * 500 us).
     */
    static std::uint64_t intervalFromEnv();

    /**
     * Process-wide instance for binaries that profile a whole run
     * (ext_fleet, ext_serve --profile, serve_demo --watch). Status
     * surfaces read its snapshot without owning the sampler.
     */
    static SpanProfiler &global();

  private:
    void samplerLoop();

    const std::uint64_t intervalUs_;

    mutable std::mutex mutex_; ///< lifecycle + accumulated data
    std::condition_variable cv_;
    std::thread thread_;
    bool stopping_ = false;
    bool running_ = false;
    Profile data_;
};

#else // UVOLT_TELEMETRY_DISABLED ---------------------------------------

/** Compiled-out stub: the API keeps its shape, sampling never runs. */
class SpanProfiler
{
  public:
    explicit SpanProfiler(std::uint64_t interval_us = 0)
        : intervalUs_(interval_us)
    {
    }

    SpanProfiler(const SpanProfiler &) = delete;
    SpanProfiler &operator=(const SpanProfiler &) = delete;

    void start() {}
    void stop() {}
    bool running() const { return false; }
    std::uint64_t intervalUs() const { return intervalUs_; }
    Profile snapshot() const { return {}; }
    void reset() {}
    static std::uint64_t intervalFromEnv() { return 0; }

    static SpanProfiler &
    global()
    {
        static SpanProfiler instance;
        return instance;
    }

  private:
    std::uint64_t intervalUs_;
};

#endif // UVOLT_TELEMETRY_DISABLED

} // namespace uvolt::profiler

#endif // UVOLT_UTIL_PROFILER_HH

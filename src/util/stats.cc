#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace uvolt
{

void
RunningStats::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
quantile(std::vector<double> values, double q)
{
    if (values.empty())
        fatal("quantile() of an empty sample");
    // NaN-proof clamp: every comparison against NaN is false, so the
    // plain std::clamp would let NaN through into the index cast below.
    if (!(q > 0.0))
        q = 0.0;
    else if (q >= 1.0)
        q = 1.0;
    std::sort(values.begin(), values.end());
    if (q == 0.0 || values.size() == 1)
        return values.front();
    if (q == 1.0) // exact extreme, no interpolation round-off
        return values.back();
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
median(std::vector<double> values)
{
    return quantile(std::move(values), 0.5);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || !(hi > lo))
        fatal("Histogram requires hi > lo and at least one bin");
}

void
Histogram::add(double x)
{
    double frac = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<long>(frac * static_cast<double>(counts_.size()));
    bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
        static_cast<double>(counts_.size());
}

double
Histogram::binHigh(std::size_t bin) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
        static_cast<double>(counts_.size());
}

} // namespace uvolt

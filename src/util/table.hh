/**
 * @file
 * Plain-text table and CSV emission.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * TextTable renders the human-readable view and writeCsv() the
 * machine-readable series (one file per figure, for external plotting).
 */

#ifndef UVOLT_UTIL_TABLE_HH
#define UVOLT_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace uvolt
{

/** A column-aligned ASCII table with a header row. */
class TextTable
{
  public:
    /** Set the header; defines the column count. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Render with aligned columns, a rule under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, comma-separated, quoted if needed). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimal places. */
std::string fmtDouble(double value, int decimals = 3);

/** Format a voltage as e.g. "0.61V". */
std::string fmtVolts(double volts);

/** Format a ratio as a percentage, e.g. "39.0%". */
std::string fmtPercent(double fraction, int decimals = 1);

/**
 * Write a table to a CSV file under the given path, creating parent
 * directories as needed. Returns false (with a warning) on I/O failure
 * so benches can keep running in read-only environments.
 */
bool writeCsv(const TextTable &table, const std::string &path);

} // namespace uvolt

#endif // UVOLT_UTIL_TABLE_HH

#include "util/flight_recorder.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>

#include "util/format.hh"
#include "util/fsio.hh"
#include "util/json.hh"
#include "util/telemetry.hh"

namespace uvolt::flightrec
{

const char *
levelName(Level level)
{
    switch (level) {
    case Level::debug:
        return "debug";
    case Level::info:
        return "info";
    case Level::warn:
        return "warn";
    case Level::error:
        return "error";
    }
    return "info";
}

#ifndef UVOLT_TELEMETRY_DISABLED

namespace
{

/** Bounded copy into a fixed char array, always NUL-terminated. */
template <std::size_t N>
void
copyTruncated(char (&dst)[N], std::string_view src)
{
    const std::size_t n = std::min(src.size(), N - 1);
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

/** One thread's ring. The owner appends; dumps copy under the mutex. */
struct Shard
{
    mutable std::mutex mutex;
    std::array<Event, FlightRecorder::shardCapacity> ring{};
    std::uint64_t written = 0; ///< total appends (wraps overwrite)
};

std::string
sanitizedReason(std::string_view reason)
{
    std::string out;
    out.reserve(reason.size());
    for (char c : reason) {
        if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')
            out.push_back(c);
        else if (c >= 'A' && c <= 'Z')
            out.push_back(static_cast<char>(c - 'A' + 'a'));
        else
            out.push_back('_');
    }
    return out.empty() ? std::string("unknown") : out;
}

} // namespace

struct FlightRecorder::Impl
{
    mutable std::mutex mutex; ///< shard list, directory, dump list
    std::vector<std::shared_ptr<Shard>> shards;
    std::string directory = "results";
    std::vector<std::string> dumpPaths;
    std::atomic<std::uint64_t> nextSeq{1};

    Shard &
    threadShard()
    {
        thread_local std::shared_ptr<Shard> local;
        if (!local) {
            local = std::make_shared<Shard>();
            std::lock_guard lock(mutex);
            shards.push_back(local);
        }
        return *local;
    }
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {}

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::record(Level level, std::string_view component,
                       std::string_view message,
                       std::uint64_t request_id)
{
    Shard &shard = impl_->threadShard();
    if (request_id == 0)
        request_id = telemetry::currentContext().flowId;
    Event event;
    event.seq = impl_->nextSeq.fetch_add(1, std::memory_order_relaxed);
    event.ns = telemetry::Registry::global().nowNs();
    event.requestId = request_id;
    event.level = level;
    copyTruncated(event.component, component);
    copyTruncated(event.message, message);
    std::lock_guard lock(shard.mutex);
    shard.ring[shard.written % shardCapacity] = event;
    ++shard.written;
}

std::vector<Event>
FlightRecorder::snapshot() const
{
    std::vector<Event> events;
    {
        std::lock_guard lock(impl_->mutex);
        for (const auto &shard : impl_->shards) {
            std::lock_guard shard_lock(shard->mutex);
            const std::uint64_t retained =
                std::min<std::uint64_t>(shard->written, shardCapacity);
            for (std::uint64_t i = 0; i < retained; ++i)
                events.push_back(
                    shard->ring[(shard->written - retained + i) %
                                shardCapacity]);
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) { return a.seq < b.seq; });
    return events;
}

std::uint64_t
FlightRecorder::recorded() const
{
    std::uint64_t total = 0;
    std::lock_guard lock(impl_->mutex);
    for (const auto &shard : impl_->shards) {
        std::lock_guard shard_lock(shard->mutex);
        total += shard->written;
    }
    return total;
}

std::uint64_t
FlightRecorder::overwritten() const
{
    std::uint64_t lost = 0;
    std::lock_guard lock(impl_->mutex);
    for (const auto &shard : impl_->shards) {
        std::lock_guard shard_lock(shard->mutex);
        if (shard->written > shardCapacity)
            lost += shard->written - shardCapacity;
    }
    return lost;
}

std::string
FlightRecorder::dump(std::string_view reason, const std::string &dir)
{
    const std::vector<Event> events = snapshot();
    if (events.empty())
        return "";

    std::string base = dir;
    if (base.empty()) {
        std::lock_guard lock(impl_->mutex);
        base = impl_->directory;
    }
    const std::string path =
        base + "/blackbox_" + sanitizedReason(reason) + ".json";

    std::string out;
    out += "{\n";
    out += strFormat("  \"schema\": \"uvolt-blackbox-v1\",\n");
    out += strFormat("  \"reason\": \"{}\",\n", json::escaped(reason));
    out += strFormat("  \"recorded\": {},\n", recorded());
    out += strFormat("  \"dropped\": {},\n", overwritten());
    out += "  \"events\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        out += strFormat(
            "    {{\"seq\": {}, \"ns\": {}, \"level\": \"{}\", "
            "\"component\": \"{}\", \"request\": {}, "
            "\"message\": \"{}\"}}{}\n",
            e.seq, e.ns, levelName(e.level), json::escaped(e.component),
            e.requestId, json::escaped(e.message),
            i + 1 < events.size() ? "," : "");
    }
    out += "  ]\n";
    out += "}\n";

    if (!writeFileAtomic(path, out))
        return "";
    std::lock_guard lock(impl_->mutex);
    impl_->dumpPaths.push_back(path);
    return path;
}

void
FlightRecorder::setDirectory(std::string dir)
{
    std::lock_guard lock(impl_->mutex);
    impl_->directory = std::move(dir);
}

std::string
FlightRecorder::directory() const
{
    std::lock_guard lock(impl_->mutex);
    return impl_->directory;
}

std::vector<std::string>
FlightRecorder::dumps() const
{
    std::lock_guard lock(impl_->mutex);
    return impl_->dumpPaths;
}

void
FlightRecorder::resetForTest()
{
    std::lock_guard lock(impl_->mutex);
    for (auto &shard : impl_->shards) {
        std::lock_guard shard_lock(shard->mutex);
        shard->written = 0;
        shard->ring.fill(Event{});
    }
    impl_->dumpPaths.clear();
    impl_->nextSeq.store(1, std::memory_order_relaxed);
}

#endif // UVOLT_TELEMETRY_DISABLED

} // namespace uvolt::flightrec

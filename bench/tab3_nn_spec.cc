/**
 * @file
 * Regenerates paper Table III: the baseline NN specification plus the
 * measured resource numbers of its deployment (BRAM usage on VC707).
 */

#include <cstdio>
#include <iostream>

#include "accel/weight_image.hh"
#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Table III: detailed specification of the baseline "
                "NN\n\n");
    const nn::ZooSpec spec = nn::paperMnistSpec();
    const nn::Network net = nn::trainOrLoad(spec);
    const nn::QuantizedModel model = nn::quantize(net);
    const accel::WeightImage image(model);

    TextTable table({"parameter", "value"});
    table.addRow({"Type", "Fully-Connected Classifier"});
    table.addRow({"Topology",
                  "6L (1L input, 4L hidden, 1L output)"});
    std::string sizes;
    for (std::size_t i = 0; i < spec.topology.size(); ++i)
        sizes += (i ? ", " : "") + std::to_string(spec.topology[i]);
    table.addRow({"Per-layer size (neurons)", "(" + sizes + ")"});
    table.addRow({"Total number of weights",
                  std::to_string(net.totalWeights())});
    table.addRow({"Activation function", "Logarithmic Sigmoid (logsig)"});
    table.addRow({"Major benchmark",
                  "MNIST-like handwritten digits (synthetic stand-in)"});
    table.addRow({"Images (training / inference)",
                  std::to_string(spec.trainCount) + " / 10000"});
    table.addRow({"Pixels per image", "28*28 = 784"});
    table.addRow({"Output classes", "10"});
    table.addRow({"Additional benchmarks",
                  "Forest-like, Reuters-like (synthetic stand-ins)"});
    table.addRow({"Data representation", "16-bit sign-magnitude "
                                         "fixed point"});
    table.addRow({"Precision", "min sign/digit per layer (Fig 9)"});
    table.addRow({"FPGA platform", "VC707 (Virtex-7)"});
    table.addRow({"Weight BRAMs (logical)",
                  std::to_string(image.logicalBramCount())});
    table.addRow({"BRAM usage (of 2060)",
                  fmtPercent(image.utilizationOf(2060))});
    table.print(std::cout);
    writeCsv(table, "results/tab3_nn_spec.csv");
    std::printf("\npaper anchors: ~1.5M weights, BRAM usage 70.8%%, "
                "last layer = 2 BRAMs (here: %u)\n",
                image.layerSpans().back().bramCount);
    return 0;
}

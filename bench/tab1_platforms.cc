/**
 * @file
 * Regenerates paper Table I: specifications of the tested FPGA
 * platforms, straight from the platform catalog plus the derived
 * capacity figures the experiments rely on.
 */

#include <cstdio>
#include <iostream>

#include "fpga/platform.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Table I: specifications of tested FPGA platforms\n\n");
    TextTable table({"parameter", "VC707", "ZC702", "KC705-A", "KC705-B"});

    const auto &catalog = fpga::platformCatalog();
    auto row = [&](const std::string &name, auto getter) {
        std::vector<std::string> cells{name};
        for (const auto &spec : catalog)
            cells.push_back(getter(spec));
        table.addRow(std::move(cells));
    };

    row("Device Family",
        [](const auto &s) { return s.family; });
    row("Chip Model",
        [](const auto &s) { return s.chipModel; });
    row("Speed Grade",
        [](const auto &s) { return s.speedGrade; });
    row("Serial Number (S/N)",
        [](const auto &s) { return s.serialNumber; });
    row("Number of BRAMs",
        [](const auto &s) { return std::to_string(s.bramCount); });
    row("Basic Size of Each BRAM",
        [](const auto &) { return std::string("1024*16-bits"); });
    row("Manufacturing Process",
        [](const auto &s) { return std::to_string(s.processNm) + "nm"; });
    row("Nominal VCCBRAM (Vnom)",
        [](const auto &s) { return fmtVolts(s.vnomMv / 1000.0); });
    row("Total BRAM capacity (Mbit)",
        [](const auto &s) { return fmtDouble(s.totalMbit(), 2); });

    table.print(std::cout);
    writeCsv(table, "results/tab1_platforms.csv");
    std::printf("\n(two identical KC705 samples expose die-to-die process"
                " variation)\n");
    return 0;
}

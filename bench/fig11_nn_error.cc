/**
 * @file
 * Regenerates paper Fig 11: NN classification error (left axis) and
 * BRAM fault rate (right axis) while VCCBRAM scales from Vmin = 0.61 V
 * to Vcrash = 0.54 V on VC707 with the stock (default) placement.
 * Paper anchors: inherent error 2.56% rising to 6.15% at Vcrash,
 * correlated with the exponential fault-rate growth; the weight-filled
 * BRAMs fault far less than pattern 0xFFFF because 76.3% of weight bits
 * are "0".
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "accel/accelerator.hh"
#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 11: NN classification error vs VCCBRAM "
                "(VC707, default placement)\n\n");

    const nn::ZooSpec zoo = nn::paperMnistSpec();
    const nn::Network net = nn::trainOrLoad(zoo);
    const nn::QuantizedModel model = nn::quantize(net);
    const data::Dataset test_set = nn::makeTestSet(zoo);
    // The paper classifies all 10000 images at every point; we do the
    // fault-free baseline at 10000 and the sweep at 4000 per point to
    // keep the bench minutes-scale on one core (sampling error ~0.3%).
    // UVOLT_EVAL_LIMIT overrides the per-point sample count (CI's
    // batch-identity leg uses a small one) and UVOLT_EVAL_WORKERS fans
    // the batched evaluation over a thread pool; both knobs are
    // bit-identical to the defaults — the emitted CSV never changes.
    std::size_t eval_limit = 4000;
    if (const char *env = std::getenv("UVOLT_EVAL_LIMIT")) {
        if (const long parsed = std::atol(env); parsed >= 1)
            eval_limit = static_cast<std::size_t>(parsed);
    }
    std::unique_ptr<ThreadPool> pool;
    if (const char *env = std::getenv("UVOLT_EVAL_WORKERS")) {
        if (const long parsed = std::atol(env); parsed >= 1)
            pool = std::make_unique<ThreadPool>(
                static_cast<std::size_t>(parsed));
    }
    const nn::EvalOptions eval{.limit = eval_limit, .batch = 0,
                               .pool = pool.get()};

    const auto &spec = fpga::findPlatform("VC707");
    pmbus::Board board(spec);
    const accel::WeightImage image(model);
    // "Default" placement = the stock flow's vulnerability-oblivious
    // BRAM assignment, modeled as a seeded uniform placement (identity
    // order would deterministically park Layer4 on two coincidentally
    // clean BRAMs). The seed is chosen so the per-layer fault exposure
    // at Vcrash matches the paper's Fig 13 observation: the output
    // layer, despite being only 2 BRAMs, receives faults.
    accel::Accelerator accel(
        board, image,
        accel::randomPlacement(image, board.device().bramCount(), 5));

    const double inherent = model.toNetwork().evaluateError(
        test_set, nn::EvalOptions{.pool = pool.get()});
    std::printf("inherent (fault-free) classification error: %.2f%% "
                "(paper: 2.56%%)\n\n", inherent * 100.0);

    TextTable table({"VCCBRAM", "NN error", "weight-bit faults",
                     "faults/Mbit (weights)", "faults/Mbit (0xFFFF)"});
    const double weight_bits =
        static_cast<double>(image.logicalBramCount()) * fpga::bramBits;
    for (int mv = spec.calib.bramVminMv; mv >= spec.calib.bramVcrashMv;
         mv -= 10) {
        board.setVccBramMv(mv);
        board.startReferenceRun();
        const auto faults = accel.weightFaults().total;
        const double error = accel.classificationError(test_set, eval);
        // The 0xFFFF-equivalent rate for the same voltage, for the
        // "weights fault less than the worst-case pattern" comparison.
        const double ffff_rate =
            board.faultModel().expectedFaults(
                board.effectiveVoltage()) /
            spec.totalMbit();
        table.addRow({fmtVolts(mv / 1000.0), fmtPercent(error, 2),
                      std::to_string(faults),
                      fmtDouble(static_cast<double>(faults) *
                                    fpga::bitsPerMbit / weight_bits, 1),
                      fmtDouble(ffff_rate, 1)});
    }
    board.softReset();
    table.print(std::cout);
    writeCsv(table, "results/fig11_nn_error.csv");

    std::printf("\npaper shape: error grows with the exponential fault "
                "rate, 2.56%% -> 6.15%% at Vcrash; weight-filled BRAMs "
                "fault ~4x less than 0xFFFF (zero-bit share %.1f%%)\n",
                model.zeroBitFraction() * 100.0);
    return 0;
}

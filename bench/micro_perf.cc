/**
 * @file
 * Micro-benchmarks (google-benchmark) for the hot paths of the library:
 * BRAM readback under fault injection, device-wide fault counting,
 * k-means clustering, weight quantization, placement construction, and
 * fixed-point NN inference. Not a paper figure — this is engineering
 * telemetry for the simulator itself.
 *
 * After the google-benchmark suite, main() times the sweep inner loop
 * (a device-wide fault-count pass at Vcrash) with telemetry recording
 * off and on and writes results/ext_telemetry.csv. The "off" row is the
 * instrumented build paying only the Telemetry::enabled() branch; run
 * the same bench from a -DUVOLT_TELEMETRY=OFF build (the "compiled"
 * column flips to "no") to compare against fully compiled-out code —
 * the disabled overhead must stay under 2 %.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "data/synthetic.hh"
#include "harness/clusterer.hh"
#include "harness/fvm.hh"
#include "nn/network.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "util/format.hh"
#include "util/kmeans.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

namespace
{

using namespace uvolt;

pmbus::Board &
vc707()
{
    static pmbus::Board board(fpga::findPlatform("VC707"));
    return board;
}

void
BM_BramReadbackAtVcrash(benchmark::State &state)
{
    auto &board = vc707();
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();
    std::uint32_t bram = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(board.readBramToHost(bram));
        bram = (bram + 1) % board.device().bramCount();
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * fpga::bramRows * 2);
    board.softReset();
}
BENCHMARK(BM_BramReadbackAtVcrash);

void
BM_DeviceFaultCount(benchmark::State &state)
{
    auto &board = vc707();
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (std::uint32_t b = 0; b < board.device().bramCount(); ++b)
            total += static_cast<std::uint64_t>(board.countBramFaults(b));
        benchmark::DoNotOptimize(total);
    }
    board.softReset();
}
BENCHMARK(BM_DeviceFaultCount);

/** One sweep inner-loop pass: count faults across the whole device. */
std::uint64_t
deviceFaultPass(pmbus::Board &board)
{
    std::uint64_t total = 0;
    for (std::uint32_t b = 0; b < board.device().bramCount(); ++b)
        total += static_cast<std::uint64_t>(board.countBramFaults(b));
    return total;
}

void
BM_SweepInnerLoopTelemetryOff(benchmark::State &state)
{
    auto &board = vc707();
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();
    telemetry::Telemetry::setEnabled(false);
    for (auto _ : state)
        benchmark::DoNotOptimize(deviceFaultPass(board));
    board.softReset();
}
BENCHMARK(BM_SweepInnerLoopTelemetryOff);

void
BM_SweepInnerLoopTelemetryOn(benchmark::State &state)
{
    auto &board = vc707();
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();
    telemetry::Telemetry::setEnabled(true);
    for (auto _ : state)
        benchmark::DoNotOptimize(deviceFaultPass(board));
    telemetry::Telemetry::setEnabled(false);
    board.softReset();
}
BENCHMARK(BM_SweepInnerLoopTelemetryOn);

void
BM_KMeansClustering(benchmark::State &state)
{
    Rng rng(7);
    std::vector<double> rates(2060);
    for (auto &rate : rates)
        rate = rng.chance(0.39) ? 0.0 : rng.exponential(100.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(kMeans1d(rates, 3));
}
BENCHMARK(BM_KMeansClustering);

void
BM_QuantizeMnistModel(benchmark::State &state)
{
    nn::Network net({784, 1024, 512, 256, 128, 10});
    net.initWeights(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(nn::quantize(net));
}
BENCHMARK(BM_QuantizeMnistModel);

void
BM_IcbpPlacement(benchmark::State &state)
{
    nn::Network net({784, 1024, 512, 256, 128, 10});
    net.initWeights(1);
    const accel::WeightImage image(nn::quantize(net));
    std::vector<int> faults(2060);
    Rng rng(3);
    for (auto &f : faults)
        f = rng.chance(0.39) ? 0 : static_cast<int>(rng.uniformInt(1, 99));
    const harness::Fvm fvm(
        "bench", vc707().device().floorplan(), std::move(faults));
    for (auto _ : state)
        benchmark::DoNotOptimize(accel::icbpPlacement(image, fvm));
}
BENCHMARK(BM_IcbpPlacement);

void
BM_MnistInference(benchmark::State &state)
{
    static const nn::Network net = [] {
        nn::Network n({784, 1024, 512, 256, 128, 10});
        n.initWeights(1);
        return n;
    }();
    static const data::Dataset set = data::makeMnistLike(64, 5);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.classify(set.sample(i)));
        i = (i + 1) % set.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MnistInference);

void
BM_MnistGeneration(benchmark::State &state)
{
    std::uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(data::makeMnistLike(32, ++seed));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_MnistGeneration);

/**
 * Best-of-N wall clock of the sweep inner loop with recording as
 * given. Best-of (not mean) because the comparison wants the noise
 * floor, not scheduler jitter.
 */
double
bestPassMs(pmbus::Board &board, bool enabled, int passes)
{
    telemetry::Telemetry::setEnabled(enabled);
    double best = 1e300;
    for (int i = 0; i < passes; ++i) {
        const auto start = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(deviceFaultPass(board));
        best = std::min(
            best, std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count());
    }
    telemetry::Telemetry::setEnabled(false);
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // --- telemetry overhead on the sweep inner loop ----------------------
    auto &board = vc707();
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();

    constexpr int passes = 40;
    (void)bestPassMs(board, false, 5); // warm caches and the fault model
    const double off_ms = bestPassMs(board, false, passes);
    const double on_ms =
        bestPassMs(board, telemetry::Telemetry::compiledIn(), passes);
    board.softReset();

    const char *compiled =
        telemetry::Telemetry::compiledIn() ? "yes" : "no";
    TextTable table({"telemetry", "compiled in", "best pass (ms)",
                     "vs off"});
    table.addRow({"off", compiled, fmtDouble(off_ms, 3), "1.000x"});
    table.addRow({"on", compiled, fmtDouble(on_ms, 3),
                  strFormat("{:.3f}x", on_ms / off_ms)});
    std::printf("\n# sweep inner loop, telemetry off vs on (device-wide "
                "fault count at Vcrash)\n");
    table.print(std::cout);
    writeCsv(table, "results/ext_telemetry.csv");
    std::printf("rebuild with -DUVOLT_TELEMETRY=OFF to compare the "
                "compiled-out baseline\n");
    return 0;
}

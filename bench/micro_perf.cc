/**
 * @file
 * Micro-benchmarks (google-benchmark) for the hot paths of the library:
 * BRAM readback under fault injection, device-wide fault counting,
 * k-means clustering, weight quantization, placement construction, and
 * fixed-point NN inference. Not a paper figure — this is engineering
 * telemetry for the simulator itself.
 */

#include <benchmark/benchmark.h>

#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "data/synthetic.hh"
#include "harness/clusterer.hh"
#include "harness/fvm.hh"
#include "nn/network.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "util/kmeans.hh"
#include "util/rng.hh"

namespace
{

using namespace uvolt;

pmbus::Board &
vc707()
{
    static pmbus::Board board(fpga::findPlatform("VC707"));
    return board;
}

void
BM_BramReadbackAtVcrash(benchmark::State &state)
{
    auto &board = vc707();
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();
    std::uint32_t bram = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(board.readBramToHost(bram));
        bram = (bram + 1) % board.device().bramCount();
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * fpga::bramRows * 2);
    board.softReset();
}
BENCHMARK(BM_BramReadbackAtVcrash);

void
BM_DeviceFaultCount(benchmark::State &state)
{
    auto &board = vc707();
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (std::uint32_t b = 0; b < board.device().bramCount(); ++b)
            total += static_cast<std::uint64_t>(board.countBramFaults(b));
        benchmark::DoNotOptimize(total);
    }
    board.softReset();
}
BENCHMARK(BM_DeviceFaultCount);

void
BM_KMeansClustering(benchmark::State &state)
{
    Rng rng(7);
    std::vector<double> rates(2060);
    for (auto &rate : rates)
        rate = rng.chance(0.39) ? 0.0 : rng.exponential(100.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(kMeans1d(rates, 3));
}
BENCHMARK(BM_KMeansClustering);

void
BM_QuantizeMnistModel(benchmark::State &state)
{
    nn::Network net({784, 1024, 512, 256, 128, 10});
    net.initWeights(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(nn::quantize(net));
}
BENCHMARK(BM_QuantizeMnistModel);

void
BM_IcbpPlacement(benchmark::State &state)
{
    nn::Network net({784, 1024, 512, 256, 128, 10});
    net.initWeights(1);
    const accel::WeightImage image(nn::quantize(net));
    std::vector<int> faults(2060);
    Rng rng(3);
    for (auto &f : faults)
        f = rng.chance(0.39) ? 0 : static_cast<int>(rng.uniformInt(1, 99));
    const harness::Fvm fvm(
        "bench", vc707().device().floorplan(), std::move(faults));
    for (auto _ : state)
        benchmark::DoNotOptimize(accel::icbpPlacement(image, fvm));
}
BENCHMARK(BM_IcbpPlacement);

void
BM_MnistInference(benchmark::State &state)
{
    static const nn::Network net = [] {
        nn::Network n({784, 1024, 512, 256, 128, 10});
        n.initWeights(1);
        return n;
    }();
    static const data::Dataset set = data::makeMnistLike(64, 5);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.classify(set.sample(i)));
        i = (i + 1) % set.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MnistInference);

void
BM_MnistGeneration(benchmark::State &state)
{
    std::uint64_t seed = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(data::makeMnistLike(32, ++seed));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_MnistGeneration);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Extension bench (the paper's stated future work): undervolting
 * behaviour projected onto newer FPGA technologies — a 20 nm
 * UltraScale-class part and a 16 nm FinFET UltraScale+-class part —
 * side by side with the measured 28 nm VC707. These platforms are
 * extrapolations (see fpga::extensionPlatformCatalog()); the bench
 * shows how the methodology transfers: region discovery, critical-
 * region sweeps, and the node-dependence of inverse thermal dependence
 * (ITD weakens dramatically on FinFETs).
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/temperature.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Extension: undervolting on newer FPGA nodes "
                "(projections, not measurements)\n\n");

    std::vector<const fpga::PlatformSpec *> specs{
        &fpga::findPlatform("VC707")};
    for (const auto &spec : fpga::extensionPlatformCatalog())
        specs.push_back(&spec);

    TextTable regions({"platform", "node", "Vnom", "Vmin", "Vcrash",
                       "guardband", "faults/Mbit @Vcrash",
                       "ITD 50->80degC"});
    for (const auto *spec : specs) {
        pmbus::Board board(*spec);
        const auto result =
            harness::discoverRegions(board, fpga::RailId::VccBram);

        const auto study =
            harness::runTemperatureStudy(board, {50.0, 80.0}, 15);
        const double itd_factor = study.reductionFactor(80.0, 50.0);
        const double rate =
            study.series.front().sweep.atVcrash().faultsPerMbit;

        regions.addRow({spec->name,
                        std::to_string(spec->processNm) + "nm",
                        fmtVolts(spec->vnomMv / 1000.0),
                        fmtVolts(result.vminMv / 1000.0),
                        fmtVolts(result.vcrashMv / 1000.0),
                        fmtPercent(result.guardband()),
                        fmtDouble(rate, 0),
                        fmtDouble(itd_factor, 2) + "x"});
    }
    regions.print(std::cout);
    writeCsv(regions, "results/ext_platforms.csv");
    std::printf("\nshape: guardbands persist on newer nodes (still "
                "worth harvesting), while the ITD fault-rate relief "
                "shrinks toward 1x on 16 nm FinFET — temperature-aware "
                "undervolting policies are a 28 nm phenomenon\n");
    return 0;
}

/**
 * @file
 * Regenerates paper Fig 3 (a-d): fault rate (faults per Mbit, median of
 * 100 runs, pattern 16'hFFFF) and BRAM power vs VCCBRAM through the
 * CRITICAL region, for each of the four platforms. The paper's anchors:
 * 652 / 153 / 254 / 60 faults per Mbit at Vcrash for VC707 / ZC702 /
 * KC705-A / KC705-B, > 10x power reduction at Vmin, and a 4.1x
 * KC705-A-to-B ratio from die-to-die variation.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 3: fault rate and BRAM power vs VCCBRAM "
                "(pattern 16'hFFFF, median of 100 runs, 50 degC)\n");

    const char *panel = "abcd";
    int index = 0;
    double kc705a_rate = 0.0;
    for (const auto &spec : fpga::platformCatalog()) {
        pmbus::Board board(spec);
        harness::SweepOptions options;
        options.collectPerBram = false;
        const harness::SweepResult sweep =
            harness::runCriticalSweep(board, options);

        std::printf("\n(%c) %s\n", panel[index++], spec.name.c_str());
        TextTable table({"VCCBRAM", "faults/Mbit", "BRAM power (W)",
                         "power vs nominal"});
        for (const auto &point : sweep.points) {
            table.addRow({fmtVolts(point.vccBramMv / 1000.0),
                          fmtDouble(point.faultsPerMbit, 1),
                          fmtDouble(point.bramPowerW, 4),
                          fmtPercent(point.bramPowerW /
                                     spec.calib.bramPowerNomW, 1)});
        }
        table.print(std::cout);
        writeCsv(table, "results/fig03_" + spec.name + ".csv");

        const double rate = sweep.atVcrash().faultsPerMbit;
        std::printf("at Vcrash: %.0f faults/Mbit (paper: %.0f)\n", rate,
                    spec.calib.faultsPerMbitAtVcrash);
        if (spec.name == "KC705-A")
            kc705a_rate = rate;
        if (spec.name == "KC705-B") {
            std::printf("die-to-die ratio KC705-A / KC705-B: %.1fx "
                        "(paper: 4.1x)\n",
                        kc705a_rate / rate);
        }
    }
    return 0;
}

/**
 * @file
 * Regenerates paper Fig 1: the SAFE / CRITICAL / CRASH voltage regions
 * of VCCBRAM (a) and VCCINT (b) for all four platforms, discovered by
 * stepping each rail down from nominal in 10 mV steps, plus the average
 * guardband the paper headlines (39% for VCCBRAM, 34% for VCCINT).
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 1: undervolting FPGA components, voltage regions\n");
    for (auto rail : {fpga::RailId::VccBram, fpga::RailId::VccInt}) {
        std::printf("\n(%s) %s\n",
                    rail == fpga::RailId::VccBram ? "a" : "b",
                    railName(rail));
        TextTable table({"platform", "Vnom", "Vmin (SAFE >=)",
                         "Vcrash (CRITICAL >=)", "guardband"});
        double guardband_sum = 0.0;
        for (const auto &spec : fpga::platformCatalog()) {
            pmbus::Board board(spec);
            const harness::RegionResult regions =
                harness::discoverRegions(board, rail);
            guardband_sum += regions.guardband();
            table.addRow({spec.name, fmtVolts(regions.vnomMv / 1000.0),
                          fmtVolts(regions.vminMv / 1000.0),
                          fmtVolts(regions.vcrashMv / 1000.0),
                          fmtPercent(regions.guardband())});
        }
        table.print(std::cout);
        std::printf("average %s guardband: %.1f%% of nominal "
                    "(paper: %s)\n",
                    railName(rail),
                    guardband_sum / 4.0 * 100.0,
                    rail == fpga::RailId::VccBram ? "39%" : "34%");
        writeCsv(table, std::string("results/fig01_") + railName(rail) +
                            ".csv");
    }
    return 0;
}

/**
 * @file
 * Extension bench (not a paper figure): DVFS vs aggressive BRAM
 * undervolting, quantifying the paper's Section IV-A.2 argument. DVFS
 * scales voltage and clock together and never faults, but it loses
 * throughput and it cannot descend below the logic rail's critical
 * operating point; the paper's approach keeps the clock at 100 MHz,
 * drops only VCCBRAM into the CRITICAL region, and relies on ICBP for
 * the faults. Reported per operating point: clock, throughput,
 * total power, and energy per inference for the Table III design.
 */

#include <cstdio>
#include <iostream>

#include "accel/perf_model.hh"
#include "power/dvfs.hh"
#include "power/power_model.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Extension: DVFS vs constant-frequency BRAM "
                "undervolting (Table III design on VC707)\n\n");

    const auto &spec = fpga::findPlatform("VC707");
    const std::vector<int> topology{784, 1024, 512, 256, 128, 10};

    // Fig 10's on-chip breakdown gives the logic ("rest") power.
    const auto design = power::OnChipBreakdown::nnDesign(spec);
    const double logic_nominal_w = design.at(1.0).restW;

    const power::DvfsPolicy policy(spec, 100.0);
    const accel::PerfModel perf(topology, spec, logic_nominal_w);

    TextTable table({"scheme", "VCCINT", "VCCBRAM", "clock MHz",
                     "inf/s", "power W", "mJ/inf", "BRAM faults?"});
    auto add = [&](const char *name, const power::OperatingPoint &point) {
        const accel::PerfPoint result = perf.evaluate(point);
        table.addRow({name, fmtVolts(point.vccIntV),
                      fmtVolts(point.vccBramV),
                      fmtDouble(result.clockMhz, 1),
                      fmtDouble(result.inferencesPerSecond, 0),
                      fmtDouble(result.totalPowerW, 3),
                      fmtDouble(result.energyPerInferenceMj, 4),
                      point.bramFaultsPossible ? "yes (ICBP)" : "no"});
    };

    add("nominal", policy.undervoltPoint(1.0));
    // DVFS ladder down to its floor (the logic critical point).
    for (int mv = 900; mv >= spec.calib.intVminMv; mv -= 80)
        add("DVFS", policy.dvfsPoint(mv / 1000.0));
    add("DVFS (floor)", policy.dvfsPoint(spec.calib.intVminMv / 1000.0));
    // The paper's scheme: full clock, BRAM rail at Vmin then Vcrash.
    add("BRAM undervolt @Vmin",
        policy.undervoltPoint(spec.calib.bramVminMv / 1000.0));
    add("BRAM undervolt @Vcrash",
        policy.undervoltPoint(spec.calib.bramVcrashMv / 1000.0));

    table.print(std::cout);
    writeCsv(table, "results/ext_dvfs.csv");

    const auto dvfs_floor = perf.evaluate(
        policy.dvfsPoint(spec.calib.intVminMv / 1000.0));
    const auto uvolt = perf.evaluate(
        policy.undervoltPoint(spec.calib.bramVcrashMv / 1000.0));
    std::printf("\nat its floor, DVFS gives %.0f%% of nominal "
                "throughput; BRAM undervolting keeps 100%% and spends "
                "%.1f%% less energy per inference than nominal\n",
                dvfs_floor.inferencesPerSecond /
                    perf.evaluate(policy.undervoltPoint(1.0))
                        .inferencesPerSecond * 100.0,
                (1.0 - uvolt.energyPerInferenceMj /
                           perf.evaluate(policy.undervoltPoint(1.0))
                               .energyPerInferenceMj) * 100.0);
    return 0;
}

/**
 * @file
 * Regenerates paper Fig 9: the minimum per-layer fixed-point precision
 * of the trained MNIST baseline — each 16-bit weight word split into
 * sign / digit / fraction, with the digit field sized to the layer's
 * largest weight. Paper shape: layers 0-3 stay inside (-1, 1) and need
 * no digit bits; only the last layer needs a digit field.
 */

#include <cstdio>
#include <iostream>

#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 9: minimum per-layer weight precision "
                "(16-bit sign-magnitude fixed point)\n\n");

    const nn::ZooSpec spec = nn::paperMnistSpec();
    const nn::Network net = nn::trainOrLoad(spec);
    const nn::QuantizedModel model = nn::quantize(net);

    TextTable table({"layer", "weights", "max |w|", "sign bits",
                     "digit bits", "fraction bits", "format",
                     "zero-bit share"});
    for (std::size_t l = 0; l < model.layers.size(); ++l) {
        const auto &layer = model.layers[l];
        table.addRow({"Layer" + std::to_string(l),
                      std::to_string(layer.weights.size()),
                      fmtDouble(net.layer(static_cast<int>(l))
                                    .maxAbsWeight(), 3),
                      "1", std::to_string(layer.format.digitBits()),
                      std::to_string(layer.format.fracBits()),
                      layer.format.describe(),
                      fmtPercent(layer.zeroBitFraction())});
    }
    table.print(std::cout);
    writeCsv(table, "results/fig09_precision.csv");

    std::printf("\nwhole model: %.1f%% of weight bits are \"0\" "
                "(paper: 76.3%%); quantization error delta on %zu "
                "held-out samples: %+.3f%%\n",
                model.zeroBitFraction() * 100.0, nn::paperEvalLimit,
                nn::quantizationErrorDelta(
                    net, nn::makeTestSet(spec, nn::paperEvalLimit),
                    nn::paperEvalLimit) * 100.0);
    std::printf("paper shape: only the last layer needs digit bits "
                "(4 on the paper's run)\n");
    return 0;
}

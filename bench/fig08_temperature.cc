/**
 * @file
 * Regenerates paper Fig 8 (a-d): fault rate vs VCCBRAM at on-board
 * temperatures of 50, 60, 70, and 80 degC for VC707 and KC705-A —
 * Inverse Thermal Dependence. Paper anchors: >3x fault-rate reduction
 * on VC707 from 50 to 80 degC; VC707 is 156% worse than KC705-A at
 * 50 degC but 11.6% better at 80 degC.
 */

#include <cstdio>
#include <iostream>

#include "harness/temperature.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 8: fault rate vs voltage vs on-board temperature "
                "(faults per Mbit)\n");
    const std::vector<double> temps{50.0, 60.0, 70.0, 80.0};

    harness::TemperatureStudy studies[2];
    const char *names[2] = {"VC707", "KC705-A"};
    for (int p = 0; p < 2; ++p) {
        pmbus::Board board(fpga::findPlatform(names[p]));
        studies[p] = harness::runTemperatureStudy(board, temps, 31);

        std::printf("\n%s\n", names[p]);
        std::vector<std::string> header{"VCCBRAM"};
        for (double t : temps)
            header.push_back(fmtDouble(t, 0) + "degC");
        TextTable table(std::move(header));
        const auto &points = studies[p].series.front().sweep.points;
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::vector<std::string> row{
                fmtVolts(points[i].vccBramMv / 1000.0)};
            for (const auto &series : studies[p].series)
                row.push_back(
                    fmtDouble(series.sweep.points[i].faultsPerMbit, 1));
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        writeCsv(table, std::string("results/fig08_") + names[p] + ".csv");
        std::printf("fault-rate reduction 50 -> 80 degC at Vcrash: "
                    "%.2fx (paper: >3x on VC707)\n",
                    studies[p].reductionFactor(80.0, 50.0));
    }

    const auto rate = [&](int p, int t) {
        return studies[p].series[static_cast<std::size_t>(t)]
            .sweep.atVcrash().faultsPerMbit;
    };
    std::printf("\nVC707 vs KC705-A at Vcrash: %+.0f%% at 50 degC, "
                "%+.1f%% at 80 degC (paper: +156%% -> -11.6%%)\n",
                (rate(0, 0) / rate(1, 0) - 1.0) * 100.0,
                (rate(0, 3) / rate(1, 3) - 1.0) * 100.0);
    return 0;
}

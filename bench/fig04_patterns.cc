/**
 * @file
 * Regenerates paper Fig 4: impact of the initial data pattern on the
 * VC707 fault rate across the CRITICAL region. The paper's findings:
 * 16'hFFFF doubles any 50%-ones pattern (16'hAAAA, 16'h5555, random
 * 50%), the 50% patterns are mutually indistinguishable, and 16'h0000
 * shows almost nothing — because ~99.9% of undervolting faults are
 * "1"->"0" flips.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 4: data-pattern impact on the fault rate (VC707, "
                "faults per Mbit)\n\n");
    pmbus::Board board(fpga::findPlatform("VC707"));

    const std::vector<harness::PatternSpec> patterns = {
        harness::PatternSpec::allOnes(),
        harness::PatternSpec::fixed(0xAAAA),
        harness::PatternSpec::fixed(0x5555),
        harness::PatternSpec::random(0.5, 3),
        harness::PatternSpec::fixed(0x0000),
    };

    std::vector<harness::SweepResult> sweeps;
    for (const auto &pattern : patterns) {
        harness::SweepOptions options;
        options.pattern = pattern;
        options.runsPerLevel = 31;
        options.collectPerBram = false;
        sweeps.push_back(harness::runCriticalSweep(board, options));
    }

    std::vector<std::string> header{"VCCBRAM"};
    for (const auto &pattern : patterns)
        header.push_back(pattern.label());
    TextTable table(std::move(header));
    for (std::size_t p = 0; p < sweeps.front().points.size(); ++p) {
        std::vector<std::string> row{
            fmtVolts(sweeps.front().points[p].vccBramMv / 1000.0)};
        for (const auto &sweep : sweeps)
            row.push_back(fmtDouble(sweep.points[p].faultsPerMbit, 1));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    writeCsv(table, "results/fig04_patterns.csv");

    const double ones = sweeps[0].atVcrash().medianFaults;
    std::printf("\nratios at Vcrash vs 16'hFFFF: AAAA %.2f, 5555 %.2f, "
                "random-50%% %.2f, 0000 %.4f "
                "(paper: ~0.5 / ~0.5 / ~0.5 / ~0)\n",
                sweeps[1].atVcrash().medianFaults / ones,
                sweeps[2].atVcrash().medianFaults / ones,
                sweeps[3].atVcrash().medianFaults / ones,
                sweeps[4].atVcrash().medianFaults / ones);
    return 0;
}

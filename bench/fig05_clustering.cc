/**
 * @file
 * Regenerates paper Fig 5: k-means clustering of VC707's per-BRAM fault
 * rates at Vcrash = 0.54 V into low-, mid-, and high-vulnerable classes.
 * Paper anchors: 88.6% of BRAMs are low-vulnerable with an average rate
 * of 0.02% (~3.4 faults per 16 kbit BRAM); 38.9% of BRAMs never fault;
 * the worst BRAM reaches 2.84%.
 */

#include <cstdio>
#include <iostream>

#include "harness/clusterer.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 5: clustering BRAMs into vulnerability classes "
                "(VC707 at Vcrash = 0.54V)\n\n");

    pmbus::Board board(fpga::findPlatform("VC707"));
    harness::SweepOptions options;
    options.runsPerLevel = 15;
    const harness::SweepResult sweep =
        harness::runCriticalSweep(board, options);
    const harness::Fvm fvm =
        harness::fvmFromSweep(sweep, board.device().floorplan());

    std::printf("per-BRAM fault rate: max %.2f%%, min 0%%, mean %.3f%%; "
                "%.1f%% of BRAMs never fault\n"
                "(paper: max 2.84%%, min 0%%, avg ~0.04%%, 38.9%% never "
                "fault)\n\n",
                fvm.maxRate() * 100.0, fvm.meanRate() * 100.0,
                fvm.faultFreeFraction() * 100.0);

    const harness::ClusterReport report = harness::clusterBrams(fvm);
    TextTable table({"class", "BRAMs", "share", "avg fault rate",
                     "avg faults/BRAM"});
    for (auto cls : {harness::VulnClass::Low, harness::VulnClass::Mid,
                     harness::VulnClass::High}) {
        const auto index = static_cast<std::size_t>(cls);
        table.addRow({harness::vulnClassName(cls),
                      std::to_string(report.sizes[index]),
                      fmtPercent(report.shareOf(cls)),
                      fmtPercent(report.meanRates[index], 3),
                      fmtDouble(report.meanCounts[index], 1)});
    }
    table.print(std::cout);
    writeCsv(table, "results/fig05_clustering.csv");
    std::printf("\npaper: 88.6%% low-vulnerable, avg rate 0.02%% "
                "(~3.4 faults per BRAM)\n");
    return 0;
}

/**
 * @file
 * Regenerates paper Fig 10: the on-chip power breakdown of the
 * FPGA-based NN on VC707 at Vnom = 1 V, Vmin = 0.61 V and Vcrash =
 * 0.54 V — BRAM vs "rest" (DSPs, LUTs, routing), with the paper's
 * headline 24.1% total on-chip reduction at Vmin.
 */

#include <cstdio>
#include <iostream>

#include "power/power_model.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 10: on-chip power breakdown of the NN design "
                "(VC707)\n\n");
    const auto &spec = fpga::findPlatform("VC707");
    const auto design = power::OnChipBreakdown::nnDesign(spec);

    TextTable table({"VCCBRAM", "BRAM (W)", "rest (W)", "total (W)",
                     "BRAM share", "total saving vs Vnom"});
    for (int mv : {spec.vnomMv, spec.calib.bramVminMv,
                   spec.calib.bramVcrashMv}) {
        const auto breakdown = design.at(mv / 1000.0);
        table.addRow({fmtVolts(mv / 1000.0),
                      fmtDouble(breakdown.bramW, 3),
                      fmtDouble(breakdown.restW, 3),
                      fmtDouble(breakdown.totalW, 3),
                      fmtPercent(breakdown.bramShare()),
                      fmtPercent(design.totalSaving(mv / 1000.0))});
    }
    table.print(std::cout);
    writeCsv(table, "results/fig10_power_breakdown.csv");

    const power::RailPowerModel rail(spec);
    std::printf("\nBRAM rail: %.1fx reduction at Vmin (paper: more than "
                "an order of magnitude); a further %.1f%% at Vcrash "
                "(paper: ~40%%, 38.1%% in Fig 14)\n",
                1.0 / rail.relativePower(spec.calib.bramVminMv / 1000.0),
                rail.savingVs(spec.calib.bramVcrashMv / 1000.0,
                              spec.calib.bramVminMv / 1000.0) * 100.0);
    std::printf("total on-chip saving at Vmin: %.1f%% (paper: 24.1%%)\n",
                design.totalSaving(spec.calib.bramVminMv / 1000.0) *
                    100.0);
    return 0;
}

/**
 * @file
 * Extension bench (the paper's future work): what happens if the
 * *logic* rail is the one pushed into its CRITICAL region while the NN
 * runs. VCCBRAM stays nominal (weights intact); VCCINT scales from its
 * Vmin down to its Vcrash and the datapath starts taking transient MAC
 * upsets. The Forest model makes the comparison cheap; the qualitative
 * result holds for any topology: datapath faults degrade accuracy far
 * faster per fault than storage faults, and no placement trick can
 * mitigate them — supporting the paper's BRAM-first scaling order.
 */

#include <cstdio>
#include <iostream>

#include "accel/logic_faults.hh"
#include "nn/model_zoo.hh"
#include "power/power_model.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Extension: NN under VCCINT (datapath) undervolting, "
                "VCCBRAM nominal\n\n");

    const auto &spec = fpga::findPlatform("VC707");
    const nn::ZooSpec zoo = nn::paperForestSpec();
    const nn::Network net = nn::trainOrLoad(zoo);
    const data::Dataset test_set = nn::makeTestSet(zoo, 4000);
    const accel::LogicFaultModel model(spec);

    const double inherent = net.evaluateError(test_set);
    std::printf("inherent error: %.2f%%; logic regions: Vmin %d mV, "
                "Vcrash %d mV\n\n",
                inherent * 100.0, spec.calib.intVminMv,
                spec.calib.intVcrashMv);

    TextTable table({"VCCINT", "neuron upset prob", "NN error"});
    for (int mv = spec.calib.intVminMv; mv >= spec.calib.intVcrashMv;
         mv -= 10) {
        const double prob =
            model.neuronUpsetProbability(mv / 1000.0);
        const double error = accel::evaluateErrorUnderLogicFaults(
            net, test_set, model, mv / 1000.0, 7);
        table.addRow({fmtVolts(mv / 1000.0),
                      fmtDouble(prob, 6),
                      fmtPercent(error, 2)});
    }
    table.print(std::cout);
    writeCsv(table, "results/ext_vccint.csv");

    std::printf("\ntakeaway: transient datapath upsets are bipolar and "
                "unmaskable; accuracy collapses orders of magnitude "
                "faster per fault than with BRAM storage faults, and "
                "ICBP-style placement cannot help — scale VCCBRAM "
                "first, exactly as the paper does\n");
    return 0;
}

/**
 * @file
 * Regenerates paper Fig 14 (a-c): the efficiency of ICBP on the
 * FPGA-based NN accelerator for the MNIST, Forest, and Reuters
 * benchmarks on VC707 — classification error vs VCCBRAM for the default
 * placement vs the ICBP-constrained placement, plus the 38.1% BRAM
 * power saving earned by running at Vcrash instead of Vmin.
 *
 * With --ablate, additionally runs the protected-layer-set ablation
 * (last layer only, as in the paper, vs last two, vs all layers by
 * descending vulnerability) and the random-placement baseline.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "accel/accelerator.hh"
#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "power/power_model.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

namespace
{

struct BenchCase
{
    const char *panel;
    nn::ZooSpec zoo;
    std::size_t evalLimit;
};

void
runCase(const BenchCase &bench, pmbus::Board &board,
        const harness::Fvm &fvm, bool ablate)
{
    const nn::Network net = nn::trainOrLoad(bench.zoo);
    const nn::QuantizedModel model = nn::quantize(net);
    const data::Dataset test_set = nn::makeTestSet(bench.zoo);
    const accel::WeightImage image(model);
    const auto &spec = board.spec();

    const double inherent =
        model.toNetwork().evaluateError(test_set, bench.evalLimit);
    std::printf("\n(%s) %s: inherent error %.2f%%, %u weight BRAMs\n",
                bench.panel, bench.zoo.benchmark.c_str(),
                inherent * 100.0, image.logicalBramCount());

    struct Config
    {
        std::string name;
        accel::Placement placement;
    };
    std::vector<Config> configs;
    // "Default" = vulnerability-oblivious placement (see fig11 bench).
    configs.push_back({"default", accel::randomPlacement(
                                      image, fvm.bramCount(), 5)});
    configs.push_back({"ICBP", accel::icbpPlacement(image, fvm)});
    if (ablate) {
        configs.push_back({"identity", accel::defaultPlacement(image)});
        accel::IcbpOptions last_two;
        const int layers = static_cast<int>(image.layerSpans().size());
        last_two.protectedLayers = {layers - 1, layers - 2};
        configs.push_back({"ICBP-last2",
                           accel::icbpPlacement(image, fvm, last_two)});
        accel::IcbpOptions all_layers;
        for (int l = layers - 1; l >= 0; --l)
            all_layers.protectedLayers.push_back(l);
        configs.push_back({"ICBP-all",
                           accel::icbpPlacement(image, fvm, all_layers)});
    }

    std::vector<std::string> header{"VCCBRAM"};
    for (const auto &config : configs) {
        header.push_back("err(" + config.name + ")");
        header.push_back("faults(" + config.name + ")");
    }
    TextTable table(std::move(header));

    std::vector<double> vcrash_errors(configs.size(), 0.0);
    for (int mv = spec.calib.bramVminMv; mv >= spec.calib.bramVcrashMv;
         mv -= 10) {
        board.setVccBramMv(mv);
        board.startReferenceRun();
        std::vector<std::string> row{fmtVolts(mv / 1000.0)};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            accel::Accelerator accel(board, image, configs[c].placement);
            const auto faults = accel.weightFaults().total;
            const double error =
                accel.classificationError(test_set, bench.evalLimit);
            if (mv == spec.calib.bramVcrashMv)
                vcrash_errors[c] = error;
            row.push_back(fmtPercent(error, 2));
            row.push_back(std::to_string(faults));
        }
        table.addRow(std::move(row));
    }
    board.softReset();
    table.print(std::cout);
    writeCsv(table, "results/fig14_" + bench.zoo.benchmark + ".csv");

    std::printf("at Vcrash: default %+.2f%% vs inherent, ICBP %+.2f%% "
                "(paper MNIST: +3.59%% vs +0.6%%)\n",
                (vcrash_errors[0] - inherent) * 100.0,
                (vcrash_errors[1] - inherent) * 100.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const bool ablate =
        argc > 1 && std::string(argv[1]) == "--ablate";
    std::printf("# Fig 14: efficiency of ICBP for MNIST, Forest, and "
                "Reuters on VC707%s\n", ablate ? " (with ablations)" : "");

    // One characterization pass serves all benchmarks (the FVM is a
    // property of the chip, not of the application).
    const auto &spec = fpga::findPlatform("VC707");
    pmbus::Board board(spec);
    harness::SweepOptions sweep_options;
    sweep_options.runsPerLevel = 5;
    const harness::SweepResult sweep =
        harness::runCriticalSweep(board, sweep_options);
    const harness::Fvm fvm =
        harness::fvmFromSweep(sweep, board.device().floorplan());

    const BenchCase cases[] = {
        {"a", nn::paperMnistSpec(), 4000},
        {"b", nn::paperForestSpec(), 4000},
        {"c", nn::paperReutersSpec(), 4000},
    };
    for (const auto &bench : cases)
        runCase(bench, board, fvm, ablate);

    const power::RailPowerModel rail(spec);
    std::printf("\nBRAM power saving at Vcrash over Vmin: %.1f%% "
                "(paper: 38.1%%)\n",
                rail.savingVs(spec.calib.bramVcrashMv / 1000.0,
                              spec.calib.bramVminMv / 1000.0) * 100.0);
    return 0;
}

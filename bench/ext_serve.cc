/**
 * @file
 * Extension bench: the undervolting-as-a-service daemon under load.
 *
 * Two phases, both exercising the service-level contract the serving
 * layer adds on top of the harness:
 *
 *  1. Identity. A fixed set of characterize + classify requests is
 *     served twice — once on a quiet server and once with the PR 1
 *     fault injector storming every channel — and every response must
 *     be bit-identical. The masking guarantee ("the noisy run IS the
 *     clean run") has to survive admission, retries, coalescing and
 *     checkpointed slicing, not just the raw sweep loop.
 *
 *  2. Closed-loop load. N requests issued by C client threads, each
 *     waiting for its response before submitting the next (closed
 *     loop: rejections back off and retry, so admission control is
 *     exercised without open-loop overload artifacts). A seeded
 *     characterize/classify mix with a sprinkling of low-priority and
 *     already-expired requests. At the end the exactly-once ledger
 *     must balance: every admitted request was responded to exactly
 *     once, nothing lost, nothing duplicated, and the drained queue is
 *     empty. p50/p99 end-to-end latency and per-request cost are
 *     exported as uvolt-bench-v1 rows (SV_ServeE2EP50 / SV_ServeE2EP99
 *     / SV_ServeReqCost) for scripts/check_regression.py.
 *
 * Exit status is the robustness verdict: nonzero when identity or the
 * exactly-once accounting fails — the CI soak leg runs this binary
 * under TSan with --noise and trusts the exit code.
 *
 * With telemetry on the run also leaves the full observability record
 * behind: a Chrome trace (--trace-out) where each sampled request is
 * one connected flow across admission -> queue -> worker, a Prometheus
 * text snapshot (--prom-out), any flight-recorder blackboxes
 * (--blackbox-dir; a scripted pressure storm under --noise guarantees
 * at least one degradation dump), a sampled CPU profile of the whole
 * run (--profile-out collapsed stacks, --flame-out self-contained
 * flame graph), and a run-ledger manifest recording where all of it
 * went. scripts/check_trace.py validates the lot in the CI
 * observability leg, and one uvolt-timeline-v1 row (p50/p99/req-cost,
 * profile top-frames) is appended to the perf timeline for
 * scripts/check_drift.py.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/synthetic.hh"
#include "harness/experiment.hh"
#include "harness/ledger.hh"
#include "harness/report.hh"
#include "harness/timeline.hh"
#include "nn/network.hh"
#include "pmbus/fault_injector.hh"
#include "serve/server.hh"
#include "util/bench.hh"
#include "util/cli.hh"
#include "util/flight_recorder.hh"
#include "util/format.hh"
#include "util/profiler.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace uvolt;

namespace
{

/** A small deterministic classifier shared by every phase. */
std::shared_ptr<const nn::Network>
fixedNet()
{
    static std::shared_ptr<const nn::Network> net = [] {
        auto fresh = std::make_shared<nn::Network>(std::vector<int>{
            data::forestFeatures, 16, data::forestClasses});
        fresh->initWeights(42);
        return fresh;
    }();
    return net;
}

serve::ModelProvider
fixedProvider()
{
    return [](int) -> Expected<std::shared_ptr<const nn::Network>> {
        return fixedNet();
    };
}

/** Sample-major feature rows for @a count synthetic samples. */
serve::ClassifyRequest
forestRequest(std::size_t count, std::uint64_t seed, int setpoint_mv)
{
    const data::Dataset set = data::makeForestLike(count, seed);
    serve::ClassifyRequest request;
    request.sampleCount = count;
    request.setpointMv = setpoint_mv;
    request.samples.reserve(count * data::forestFeatures);
    for (std::size_t s = 0; s < count; ++s) {
        const auto row = set.sample(s);
        request.samples.insert(request.samples.end(), row.begin(),
                               row.end());
    }
    return request;
}

/** Canonical text form of a sweep, for bit-identity comparison. */
std::string
sweepDigest(const harness::SweepResult &sweep)
{
    std::string digest = sweep.platform + ";" + sweep.dieId;
    for (const auto &point : sweep.points) {
        digest += strFormat(";{}:{}", point.vccBramMv,
                            point.medianFaults);
        for (double count : point.runCounts)
            digest += strFormat("|{}", count);
        for (unsigned faults : point.perBramFaults)
            digest += strFormat(",{}", faults);
    }
    return digest;
}

/** What one server produced for the fixed identity request set. */
struct IdentityRun
{
    std::vector<std::string> sweeps;
    std::vector<std::vector<int>> classes;
};

/** Serve the fixed request set on a fresh server; harsh iff @a noise. */
IdentityRun
runIdentitySet(const std::optional<pmbus::NoiseConfig> &noise,
               std::uint64_t seed)
{
    serve::ServerConfig config;
    config.workers = 2;
    config.queueCapacity = 64;
    config.noise = noise;
    config.modelProvider = fixedProvider();
    config.seed = seed;
    serve::UvoltServer server(std::move(config));

    const std::vector<std::pair<std::string, harness::PatternSpec>>
        shapes{{"ZC702", harness::PatternSpec::allOnes()},
               {"ZC702", harness::PatternSpec::fixed(0xAAAA)},
               {"KC705-A", harness::PatternSpec::allOnes()}};
    std::vector<std::future<Expected<serve::CharacterizeResponse>>>
        characterizes;
    for (const auto &[platform, pattern] : shapes) {
        serve::CharacterizeRequest request;
        request.platform = platform;
        request.pattern = pattern;
        request.runsPerLevel = 3;
        characterizes.push_back(
            server.submitCharacterize(std::move(request)).orFatal());
    }
    std::vector<std::future<Expected<serve::ClassifyResponse>>>
        classifies;
    for (std::uint64_t i = 0; i < 12; ++i)
        classifies.push_back(
            server.submitClassify(forestRequest(16, 100 + i, 850))
                .orFatal());

    IdentityRun run;
    for (auto &future : characterizes)
        run.sweeps.push_back(sweepDigest(future.get().orFatal().sweep));
    for (auto &future : classifies)
        run.classes.push_back(future.get().orFatal().classes);
    server.stop();
    return run;
}

/** Everything one load-phase client thread observed. */
struct ClientLedger
{
    std::uint64_t submitted = 0;   ///< admitted by the server
    std::uint64_t okResponses = 0; ///< futures resolving with a value
    std::uint64_t errors = 0;      ///< futures resolving with an Error
    std::uint64_t queueFullRetries = 0;
    std::uint64_t shedRefusals = 0;
    std::vector<double> latenciesMs; ///< successful requests only
};

double
msSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** A single-valued uvolt-bench-v1 row (one measured quantity). */
bench::BenchResult
valueRow(const std::string &name, double ns)
{
    bench::BenchResult result;
    result.name = name;
    result.iterationsPerRepeat = 1;
    result.repeats = 1;
    result.wall = bench::summarize({ns});
    result.cpu = bench::summarize({});
    result.itersPerSec = ns > 0.0 ? 1e9 / ns : 0.0;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Serving-daemon soak: identity under fault storms, "
                  "then closed-loop load with exactly-once accounting");
    cli.addInt("requests", 1200, "total requests in the load phase");
    cli.addInt("clients", 8, "closed-loop client threads");
    cli.addInt("workers", 4, "server worker threads");
    cli.addInt("queue-capacity", 48, "admission-control queue bound");
    cli.addInt("seed", 7, "base seed for the request mix");
    cli.addBool("noise", "attach the harsh-environment injector");
    cli.addDouble("noise-p", 0.02, "per-channel injection probability");
    cli.addBool("skip-identity", "load phase only (quick runs)");
    cli.addString("out", "results/ext_serve_bench.json",
                  "uvolt-bench-v1 output path");
    cli.addString("trace-out", "results/ext_serve_trace.json",
                  "Chrome trace output (\"\" disables)");
    cli.addString("prom-out", "results/ext_serve_metrics.prom",
                  "Prometheus text snapshot (\"\" disables)");
    cli.addString("blackbox-dir", "results",
                  "flight-recorder dump directory (\"\" disables)");
    cli.addString("ledger-dir", "results/ledger",
                  "run-manifest directory (\"\" disables)");
    cli.addString("profile-out", "results/profile_ext_serve.folded",
                  "collapsed-stack profile (\"\" disables sampling)");
    cli.addString("flame-out", "results/profile_ext_serve.html",
                  "flame graph HTML (\"\" disables)");
    cli.addString("timeline", harness::Timeline::defaultPath(),
                  "perf-timeline JSONL to append to (\"\" disables)");
    const auto parsed = cli.tryParse(argc, argv);
    if (!parsed.ok()) {
        std::fprintf(stderr, "ext_serve: %s\n",
                     parsed.error().message.c_str());
        return 2;
    }
    if (!parsed.value())
        return 0; // --help
    const auto requests =
        static_cast<std::uint64_t>(cli.getInt("requests"));
    const auto clients = static_cast<std::size_t>(cli.getInt("clients"));
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    const bool noisy = cli.getBool("noise");
    const double noise_p = cli.getDouble("noise-p");

    // Sample span stacks for the whole run (both phases). The sampler
    // is read-only over the trace-span stacks, so every artifact below
    // stays byte-identical with it on or off — the CI profiling leg
    // asserts exactly that.
    const std::string profile_out = cli.getString("profile-out");
    const std::string flame_out = cli.getString("flame-out");
    const std::string started_at = harness::nowIso8601();
    profiler::SpanProfiler &profiler = profiler::SpanProfiler::global();
    if (!profile_out.empty())
        profiler.start();

    bool verdict_ok = true;

    // --- phase 1: bit-identity through the service boundary -------------
    if (!cli.getBool("skip-identity")) {
        std::printf("# phase 1: identity, injector off vs on "
                    "(p = %.3f per channel)\n",
                    noise_p);
        const IdentityRun quiet = runIdentitySet(std::nullopt, seed);
        pmbus::NoiseConfig storm =
            pmbus::NoiseConfig::harsh(11, noise_p);
        storm.spuriousCrashProb = 0.2;
        const IdentityRun stormy = runIdentitySet(storm, seed);
        const bool identical = quiet.sweeps == stormy.sweeps &&
            quiet.classes == stormy.classes;
        std::printf("  %zu sweeps + %zu classify batches: %s\n",
                    quiet.sweeps.size(), quiet.classes.size(),
                    identical ? "bit-identical" : "DIVERGED");
        verdict_ok = verdict_ok && identical;
    }

    // --- phase 2: closed-loop load ---------------------------------------
    std::printf("\n# phase 2: closed-loop load (%llu requests, %zu "
                "clients, %ld workers, queue %ld%s)\n",
                static_cast<unsigned long long>(requests), clients,
                cli.getInt("workers"), cli.getInt("queue-capacity"),
                noisy ? ", noisy" : "");
    serve::ServerConfig config;
    config.workers = static_cast<std::size_t>(cli.getInt("workers"));
    config.queueCapacity =
        static_cast<std::size_t>(cli.getInt("queue-capacity"));
    if (noisy)
        config.noise = pmbus::NoiseConfig::harsh(seed + 1, noise_p);
    config.modelProvider = fixedProvider();
    config.seed = seed;
    config.blackboxDir = cli.getString("blackbox-dir");
    serve::UvoltServer server(std::move(config));

    // One pre-verified request: the served classes must equal a direct
    // evaluation of the same model on the same samples.
    {
        const serve::ClassifyRequest probe = forestRequest(32, 999, 850);
        std::vector<int> expected;
        const data::Dataset set = data::makeForestLike(32, 999);
        for (std::size_t s = 0; s < 32; ++s)
            expected.push_back(fixedNet()->classify(set.sample(s)));
        const auto response =
            server.submitClassify(probe).orFatal().get().orFatal();
        const bool correct = response.classes == expected;
        std::printf("  served classes match direct evaluation: %s\n",
                    correct ? "yes" : "NO");
        verdict_ok = verdict_ok && correct;
    }

    std::atomic<std::uint64_t> next{0};
    std::vector<ClientLedger> ledgers(clients);
    const auto load_start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (std::size_t c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
            ClientLedger &ledger = ledgers[c];
            for (std::uint64_t i = next.fetch_add(1); i < requests;
                 i = next.fetch_add(1)) {
                const auto start = std::chrono::steady_clock::now();
                std::future<Expected<serve::ClassifyResponse>> classify;
                std::future<Expected<serve::CharacterizeResponse>> sweep;
                const bool is_sweep = i % 64 == 0;
                for (;;) {
                    Error refusal;
                    if (is_sweep) {
                        serve::CharacterizeRequest request;
                        request.platform =
                            i % 128 == 0 ? "ZC702" : "KC705-A";
                        request.runsPerLevel = 3;
                        auto admitted = server.submitCharacterize(
                            std::move(request));
                        if (admitted.ok()) {
                            sweep = admitted.take();
                            break;
                        }
                        refusal = admitted.error();
                    } else {
                        serve::ClassifyRequest request = forestRequest(
                            8, seed * 100003 + i, 850);
                        request.priority = i % 8 == 7
                            ? serve::Priority::low
                            : serve::Priority::normal;
                        // A sprinkling of already-hopeless deadlines:
                        // they must fail cleanly, not leak.
                        if (i % 97 == 13)
                            request.deadlineMs = 1e-3;
                        auto admitted =
                            server.submitClassify(std::move(request));
                        if (admitted.ok()) {
                            classify = admitted.take();
                            break;
                        }
                        refusal = admitted.error();
                    }
                    if (refusal.code == Errc::loadShed) {
                        ++ledger.shedRefusals;
                        break; // a synchronous, final refusal
                    }
                    // Closed loop: a full queue means back off and
                    // retry the same request.
                    ++ledger.queueFullRetries;
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                }
                const bool admitted = sweep.valid() || classify.valid();
                if (!admitted)
                    continue;
                ++ledger.submitted;
                const bool ok = is_sweep ? sweep.get().ok()
                                         : classify.get().ok();
                if (ok) {
                    ++ledger.okResponses;
                    ledger.latenciesMs.push_back(msSince(start));
                } else {
                    ++ledger.errors;
                }
            }
        });
    }
    for (auto &thread : pool)
        thread.join();
    // Scripted pressure storm: drive the degradation state machine
    // through degraded and back so the health-transition flight-recorder
    // dump is exercised deterministically — the load mix alone may or
    // may not push the health score below the threshold.
    if (noisy) {
        for (int i = 0; i < 12; ++i)
            server.observeFaultPressure(3.0);
        for (int i = 0; i < 24; ++i)
            server.observeFaultPressure(0.0);
    }
    server.drain();
    const double load_ms = msSince(load_start);
    const auto stats = server.stats();
    const std::size_t depth_after_drain = server.queueDepth();
    const serve::StatusReport status = server.statusReport();
    server.stop();
    profiler.stop();
    const profiler::Profile profile = profiler.snapshot();
    std::printf("\n# status at drain\n%s", status.render().c_str());

    // --- the exactly-once ledger -----------------------------------------
    ClientLedger total;
    std::vector<double> latencies;
    for (const auto &ledger : ledgers) {
        total.submitted += ledger.submitted;
        total.okResponses += ledger.okResponses;
        total.errors += ledger.errors;
        total.queueFullRetries += ledger.queueFullRetries;
        total.shedRefusals += ledger.shedRefusals;
        latencies.insert(latencies.end(), ledger.latenciesMs.begin(),
                         ledger.latenciesMs.end());
    }
    std::sort(latencies.begin(), latencies.end());
    const auto percentile = [&](double p) {
        if (latencies.empty())
            return 0.0;
        const auto index = static_cast<std::size_t>(
            p * static_cast<double>(latencies.size() - 1));
        return latencies[index];
    };
    const double p50_ms = percentile(0.50);
    const double p99_ms = percentile(0.99);
    const double throughput = load_ms > 0.0
        ? 1000.0 * static_cast<double>(stats.completed) / load_ms
        : 0.0;

    // +1 for the pre-verified probe request, admitted outside the pool.
    const bool balanced = stats.admitted == total.submitted + 1 &&
        stats.completed + stats.failed == stats.admitted &&
        total.okResponses + total.errors == total.submitted &&
        depth_after_drain == 0;
    verdict_ok = verdict_ok && balanced;

    TextTable table({"quantity", "value"});
    table.addRow({"admitted", std::to_string(stats.admitted)});
    table.addRow({"completed", std::to_string(stats.completed)});
    table.addRow({"failed", std::to_string(stats.failed)});
    table.addRow({"  deadline exceeded",
                  std::to_string(stats.deadlineExceeded)});
    table.addRow({"rejected (queue full)",
                  std::to_string(stats.rejected)});
    table.addRow({"shed (degraded)", std::to_string(stats.shed)});
    table.addRow({"transient retries", std::to_string(stats.retried)});
    table.addRow({"coalesced blocks",
                  std::to_string(stats.coalescedBlocks)});
    table.addRow({"client queue-full retries",
                  std::to_string(total.queueFullRetries)});
    table.addRow({"wall clock (ms)", fmtDouble(load_ms, 1)});
    table.addRow({"throughput (req/s)", fmtDouble(throughput, 1)});
    table.addRow({"e2e p50 (ms)", fmtDouble(p50_ms, 2)});
    table.addRow({"e2e p99 (ms)", fmtDouble(p99_ms, 2)});
    table.addRow({"exactly-once ledger",
                  balanced ? "balanced" : "IMBALANCED"});
    table.print(std::cout);
    writeCsv(table, "results/ext_serve.csv");

    if (!balanced)
        std::fprintf(stderr,
                     "IMBALANCED: admitted %llu, responded %llu, "
                     "client-side %llu, queue depth %zu\n",
                     static_cast<unsigned long long>(stats.admitted),
                     static_cast<unsigned long long>(stats.completed +
                                                     stats.failed),
                     static_cast<unsigned long long>(total.okResponses +
                                                     total.errors),
                     depth_after_drain);

    // --- uvolt-bench-v1 export for the regression gate -------------------
    const std::vector<bench::BenchResult> results{
        valueRow("SV_ServeE2EP50", p50_ms * 1e6),
        valueRow("SV_ServeE2EP99", p99_ms * 1e6),
        valueRow("SV_ServeReqCost",
                 stats.completed ? load_ms * 1e6 /
                         static_cast<double>(stats.completed)
                                 : 0.0),
    };
    bench::BenchOptions options;
    options.repeats = 1;
    options.minTimeMs = 0.0;
    const std::string out = cli.getString("out");
    if (!bench::writeBenchJson(results, options, out)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 2;
    }
    // --- observability artifacts + run ledger ----------------------------
    const std::string trace_out = cli.getString("trace-out");
    const std::string prom_out = cli.getString("prom-out");
    if (!trace_out.empty() && harness::writeChromeTrace(trace_out))
        std::printf("trace -> %s\n", trace_out.c_str());
    if (!prom_out.empty() &&
        harness::writePrometheus(telemetry::Registry::global().metrics(),
                                 prom_out))
        std::printf("prometheus -> %s\n", prom_out.c_str());
    const std::vector<std::string> blackboxes =
        flightrec::FlightRecorder::global().dumps();
    for (const auto &box : blackboxes)
        std::printf("blackbox -> %s\n", box.c_str());
    if (!profile_out.empty() && !profile.empty()) {
        if (profiler::writeFolded(profile, profile_out))
            std::printf("profile -> %s (%llu samples, %zu stacks)\n",
                        profile_out.c_str(),
                        static_cast<unsigned long long>(profile.samples),
                        profile.folded.size());
        if (!flame_out.empty() &&
            harness::writeFlameGraph(
                profile,
                strFormat("ext_serve — {} samples @ {}us",
                          profile.samples, profile.intervalUs),
                flame_out))
            std::printf("flame graph -> %s\n", flame_out.c_str());
    }

    const std::string ledger_dir = cli.getString("ledger-dir");
    if (!ledger_dir.empty()) {
        harness::RunManifest manifest;
        manifest.tool = "UvoltServer";
        manifest.gitSha = bench::buildGitSha();
        manifest.startedAtIso = started_at;
        manifest.configDigest = harness::configDigest(strFormat(
            "serve;requests={};clients={};workers={};queue={};"
            "noisy={};seed={}",
            requests, clients, cli.getInt("workers"),
            cli.getInt("queue-capacity"), noisy ? 1 : 0, seed));
        manifest.runId = strFormat(
            "{}-{}", manifest.configDigest.substr(0, 8),
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        manifest.workers = static_cast<std::uint64_t>(
            cli.getInt("workers"));
        manifest.durationMs = load_ms;
        manifest.artifacts.push_back("results/ext_serve.csv");
        manifest.artifacts.push_back(out);
        manifest.tracePath = trace_out;
        manifest.prometheusPath = prom_out;
        manifest.blackboxPaths = blackboxes;
        for (const auto &[name, value] :
             telemetry::Registry::global().metrics().counters) {
            if (name.rfind("serve.", 0) == 0)
                manifest.counters.emplace_back(name, value);
        }
        if (auto recorded =
                harness::Ledger(ledger_dir).record(manifest);
            !recorded.ok()) {
            std::fprintf(stderr, "ledger: %s\n",
                         recorded.error().message.c_str());
        } else {
            std::printf("manifest -> %s/run_manifest.json\n",
                        ledger_dir.c_str());
        }
    }

    // --- perf timeline row ------------------------------------------------
    if (const std::string timeline_path = cli.getString("timeline");
        !timeline_path.empty()) {
        harness::TimelineRow row;
        row.tool = "ext_serve";
        row.gitSha = bench::buildGitSha();
        row.startedAtIso = started_at;
        row.configDigest = harness::configDigest(strFormat(
            "serve;requests={};clients={};workers={};queue={};"
            "noisy={};seed={}",
            requests, clients, cli.getInt("workers"),
            cli.getInt("queue-capacity"), noisy ? 1 : 0, seed));
        row.runId = strFormat("{}-{}", row.configDigest.substr(0, 8),
                              started_at);
        row.workers =
            static_cast<std::uint64_t>(cli.getInt("workers"));
        row.durationMs = load_ms;
        row.metrics = {
            {"e2e_p50_ms", p50_ms},
            {"e2e_p99_ms", p99_ms},
            {"req_cost_ms",
             stats.completed
                 ? load_ms / static_cast<double>(stats.completed)
                 : 0.0},
            {"throughput_rps", throughput}};
        for (const auto &frame : profile.topFrames(5))
            row.topFrames.emplace_back(frame.name, frame.self);
        harness::Timeline timeline(timeline_path);
        if (timeline.append(row).ok())
            std::printf("timeline: appended run %s -> %s\n",
                        row.runId.c_str(), timeline.path().c_str());
    }

    std::printf("\nlatency rows -> %s (gate: "
                "scripts/check_regression.py)\n",
                out.c_str());
    std::printf("shape: every admitted request answered exactly once, "
                "queue drained to\nempty, and the noisy identity run "
                "byte-equal to the quiet one\n");
    return verdict_ok ? 0 : 1;
}

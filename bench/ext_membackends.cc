/**
 * @file
 * Extension bench: one fleet, three memory technologies.
 *
 * The paper characterizes FPGA BRAM; the follow-up work applies the
 * same methodology to HBM2 stacks (arXiv:2101.00969) and MoRS-modeled
 * SRAMs (arXiv:2110.05855). With every technology behind the
 * MemoryDevice interface, a single FleetEngine run can sweep a
 * heterogeneous population — which is exactly what this bench does:
 *
 *  (a) a mixed {VC707, HBM2-A, MORS-SRAM-A} x 2-pattern fleet runs
 *      serially, on 1 worker, and on 8 workers; every per-job sweep
 *      must be bit-identical across the three schedules (the exit
 *      code),
 *  (b) the per-technology envelope table (Vmin/Vcrash guardband,
 *      faults/Mbit at Vcrash, rail power saving at Vmin) is written to
 *      results/ext_membackends.csv. Every value in the CSV is a pure
 *      function of the catalog specs and the seeded fault
 *      personalities — no wall-clock — so CI compares it byte-for-byte
 *      against the committed golden (goldens/ext_membackends.csv),
 *  (c) one uvolt-timeline-v1 row (serial/parallel wall clock, speedup)
 *      is appended for scripts/check_drift.py.
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "harness/campaign.hh"
#include "harness/ledger.hh"
#include "harness/timeline.hh"
#include "mem/catalog.hh"
#include "util/bench.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace uvolt;

namespace
{

const char *const kFleet[] = {"VC707", "HBM2-A", "MORS-SRAM-A"};

double
msSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
sameFleet(const harness::FleetResult &a, const harness::FleetResult &b)
{
    if (a.jobs.size() != b.jobs.size())
        return false;
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        const harness::SweepResult &p = a.jobs[i].sweep;
        const harness::SweepResult &q = b.jobs[i].sweep;
        if (p.points.size() != q.points.size())
            return false;
        for (std::size_t j = 0; j < p.points.size(); ++j) {
            if (p.points[j].vccBramMv != q.points[j].vccBramMv ||
                p.points[j].runCounts != q.points[j].runCounts ||
                p.points[j].medianFaults != q.points[j].medianFaults ||
                p.points[j].perBramFaults != q.points[j].perBramFaults)
                return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    const std::string started_at = harness::nowIso8601();
    const auto run_start = std::chrono::steady_clock::now();
    std::printf("# Extension: heterogeneous memory fleet "
                "(BRAM + HBM + MoRS-SRAM)\n\n");

    const harness::Campaign campaign =
        harness::Campaign::onDevices(
            {kFleet[0], kFleet[1], kFleet[2]})
            .withPatterns({harness::PatternSpec::allOnes(),
                           harness::PatternSpec::fixed(0x0000)})
            .sweep(9)
            .ledgerUnder("");

    // --- (a) bit-identity across schedules -------------------------------
    auto serial_start = std::chrono::steady_clock::now();
    const harness::FleetResult serial = campaign.run().orFatal();
    const double serial_ms = msSince(serial_start);

    ThreadPool one(1);
    const harness::FleetResult single = campaign.run(one).orFatal();

    ThreadPool eight(8);
    auto parallel_start = std::chrono::steady_clock::now();
    const harness::FleetResult parallel = campaign.run(eight).orFatal();
    const double parallel_ms = msSince(parallel_start);

    const bool identical =
        sameFleet(serial, single) && sameFleet(serial, parallel);
    std::printf("schedules: serial %.1f ms, 8 workers %.1f ms "
                "(%.2fx); 0/1/8-worker sweeps bit-identical: %s\n\n",
                serial_ms, parallel_ms, serial_ms / parallel_ms,
                identical ? "yes" : "NO");

    // --- (b) the per-technology envelope table (the golden) ---------------
    // Deterministic by construction: catalog constants, seeded fault
    // personalities, and the stateless sweep — nothing here may depend
    // on timing, worker count, or host.
    TextTable table({"device", "technology", "die", "vnom (mV)",
                     "vmin (mV)", "vcrash (mV)", "guardband",
                     "faults/Mbit @ Vcrash", "power saving @ Vmin"});
    for (const char *name : kFleet) {
        const mem::DeviceTraits traits = mem::traitsOfName(name);
        const auto device = mem::makeDevice(name);
        const harness::DieReport &die = parallel.die(name);
        const double guardband =
            1.0 - static_cast<double>(traits.vminMv) / traits.vnomMv;
        const double saving = device->railPowerW(traits.vnomMv / 1e3) /
            device->railPowerW(traits.vminMv / 1e3);
        table.addRow({traits.name,
                      mem::technologyName(traits.technology),
                      traits.dieId, std::to_string(traits.vnomMv),
                      std::to_string(traits.vminMv),
                      std::to_string(traits.vcrashMv),
                      strFormat("{:.1f}%", guardband * 100.0),
                      fmtDouble(die.faultsPerMbitAtVcrash, 1),
                      strFormat("{:.2f}x", saving)});
    }
    table.print(std::cout);
    writeCsv(table, "results/ext_membackends.csv");
    std::printf("\nwrote results/ext_membackends.csv (golden: "
                "goldens/ext_membackends.csv)\n");

    // --- (c) perf timeline row --------------------------------------------
    harness::TimelineRow row;
    row.tool = "ext_membackends";
    row.gitSha = bench::buildGitSha();
    row.startedAtIso = started_at;
    row.configDigest = harness::configDigest(
        "ext_membackends;devices=3;patterns=2;sweep=9");
    row.runId = strFormat("{}-{}", row.configDigest.substr(0, 8),
                          started_at);
    row.workers = 8;
    row.durationMs = msSince(run_start);
    row.metrics = {{"serial_ms", serial_ms},
                   {"parallel_ms", parallel_ms},
                   {"speedup", serial_ms / parallel_ms}};
    harness::Timeline timeline;
    if (timeline.append(row).ok())
        std::printf("timeline: appended run %s -> %s\n",
                    row.runId.c_str(), timeline.path().c_str());

    std::printf("\nshape: three technologies through one FleetEngine, "
                "bit-identical at\n0/1/8 workers; the envelope CSV is "
                "byte-stable and gated as a golden\n");
    return identical ? 0 : 1;
}

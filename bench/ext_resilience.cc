/**
 * @file
 * Extension bench: campaign resilience vs injected fault pressure.
 *
 * The paper notes that "repeating these tests in more noisy and harsh
 * environments can cause observable faults above observed Vmin" — and a
 * real undervolting campaign also has to survive flaky instrumentation:
 * corrupted readback frames, NACKed PMBus transactions, mis-latched
 * setpoints, and spurious configuration crashes near Vcrash. This bench
 * sweeps the injected fault probability from 0 to 10% and shows that
 * the retry/recovery machinery (a) always completes the Listing-1
 * campaign, (b) reproduces the quiet campaign's fault statistics bit
 * for bit, and (c) costs wall-clock only in proportion to the noise,
 * with negligible overhead when the environment is quiet.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

namespace
{

harness::SweepOptions
campaignOptions()
{
    harness::SweepOptions options;
    options.runsPerLevel = 21;
    return options;
}

double
timedSweep(pmbus::Board &board, harness::SweepResult &result)
{
    const auto start = std::chrono::steady_clock::now();
    result = harness::runCriticalSweep(board, campaignOptions());
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

bool
sameStatistics(const harness::SweepResult &a, const harness::SweepResult &b)
{
    if (a.points.size() != b.points.size())
        return false;
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        if (a.points[i].vccBramMv != b.points[i].vccBramMv ||
            a.points[i].runCounts != b.points[i].runCounts ||
            a.points[i].perBramFaults != b.points[i].perBramFaults)
            return false;
    }
    return true;
}

} // namespace

int
main()
{
    std::printf("# Extension: harsh-environment resilience of the "
                "Listing-1 campaign (ZC702)\n\n");
    std::printf("noise probability p applies to frame corruption, PMBus "
                "NACKs, setpoint jitter,\nand spurious crashes in the "
                "30 mV band above Vcrash; per-level statistics must\n"
                "match the quiet campaign bit for bit\n\n");

    // Warm-up pass (throwaway board) so the reference timing is not
    // polluted by first-touch costs. Every measured sweep below runs on
    // a fresh board so all campaigns draw the same run-jitter stream.
    harness::SweepResult reference;
    {
        pmbus::Board warmup_board(fpga::findPlatform("ZC702"));
        timedSweep(warmup_board, reference);
    }
    pmbus::Board quiet_board(fpga::findPlatform("ZC702"));
    const double quiet_ms = timedSweep(quiet_board, reference);

    TextTable table({"noise p", "completed", "bit-identical", "crashes "
                     "recovered", "runs retried", "link retransmits",
                     "pmbus retries", "wall-clock (ms)", "overhead"});

    for (double p : {0.0, 0.01, 0.02, 0.05, 0.10}) {
        pmbus::Board board(fpga::findPlatform("ZC702"));
        board.attachNoise(pmbus::NoiseConfig::harsh(2026, p));

        harness::SweepResult noisy;
        const double noisy_ms = timedSweep(board, noisy);
        const bool identical = sameStatistics(reference, noisy);

        table.addRow({fmtPercent(p),
                      noisy.points.empty() ? "NO" : "yes",
                      identical ? "yes" : "NO",
                      std::to_string(noisy.resilience.crashRecoveries),
                      std::to_string(noisy.resilience.runsRetried),
                      std::to_string(noisy.resilience.linkRetransmits),
                      std::to_string(noisy.resilience.pmbusRetries),
                      fmtDouble(noisy_ms, 1),
                      fmtPercent(noisy_ms / quiet_ms - 1.0)});
    }
    table.print(std::cout);
    writeCsv(table, "results/ext_resilience.csv");

    std::printf("\nshape: completion and statistics hold at every noise "
                "level; retries and crash\nrecoveries grow with p and "
                "buy the wall-clock overhead, which vanishes as the\n"
                "environment quiets (p=0 with the injector attached "
                "should cost ~nothing vs the\nquiet reference at %.1f "
                "ms)\n",
                quiet_ms);
    return 0;
}

/**
 * @file
 * Extension bench (not a paper figure): ICBP vs the classic mitigation
 * alternatives the paper's related-work section rules out on cost
 * grounds (Section IV-A.4) — temporal re-read voting, spatial TMR, and
 * SECDED ECC — measured on the Forest model deployed adversarially on
 * ZC702 at Vcrash. Reported per strategy: residual weight-bit faults,
 * fault coverage, classification error, and BRAM storage overhead.
 *
 * Headline: temporal redundancy corrects ~nothing because undervolting
 * faults are deterministic (Table II), spatial techniques work but pay
 * 50-200% BRAM overhead, and ICBP gets comparable protection for free.
 */

#include <cstdio>
#include <iostream>

#include "accel/accelerator.hh"
#include "accel/mitigation.hh"
#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Extension: ICBP vs temporal voting vs TMR vs SECDED "
                "(Forest on ZC702 at Vcrash)\n\n");

    const nn::ZooSpec zoo = nn::paperForestSpec();
    const nn::Network net = nn::trainOrLoad(zoo);
    const nn::QuantizedModel model = nn::quantize(net);
    const data::Dataset test_set = nn::makeTestSet(zoo, 4000);
    const accel::WeightImage image(model);

    pmbus::Board board(fpga::findPlatform("ZC702"));
    harness::SweepOptions sweep_options;
    sweep_options.runsPerLevel = 5;
    const harness::SweepResult sweep =
        harness::runCriticalSweep(board, sweep_options);
    const harness::Fvm fvm =
        harness::fvmFromSweep(sweep, board.device().floorplan());

    const double inherent =
        model.toNetwork().evaluateError(test_set);
    std::printf("inherent error: %.2f%%; image: %u BRAMs of %u\n\n",
                inherent * 100.0, image.logicalBramCount(),
                board.device().bramCount());

    // Adversarial data placement (worst BRAMs) exposes every strategy
    // to a meaningful fault dose; protect all layers.
    auto order = fvm.bramsByReliability();
    std::vector<std::uint32_t> worst(
        order.rbegin(), order.rbegin() + image.logicalBramCount());
    std::vector<int> all_layers;
    for (std::size_t l = 0; l < model.layers.size(); ++l)
        all_layers.push_back(static_cast<int>(l));
    accel::MitigationLab lab(board, image,
                             accel::Placement(std::move(worst)),
                             all_layers);

    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();

    TextTable table({"strategy", "raw faults", "residual", "coverage",
                     "extra BRAMs", "error"});
    auto add = [&](const char *name, const nn::QuantizedModel &observed,
                   const accel::MitigationReport &report) {
        table.addRow({name, std::to_string(report.rawFaults),
                      std::to_string(report.residualFaults),
                      fmtPercent(report.coverage()),
                      std::to_string(report.extraBrams),
                      fmtPercent(observed.toNetwork().evaluateError(
                                     test_set), 2)});
    };

    accel::MitigationReport report;
    add("none (worst-case)", lab.readRaw(report), report);
    board.startReferenceRun();
    add("temporal vote x3", lab.readTemporalVote(3, report), report);
    board.startReferenceRun();
    add("spatial TMR", lab.readSpatialTmr(report), report);
    add("SECDED", lab.readSecded(report), report);

    // ICBP for reference: protected placement, zero storage overhead.
    accel::IcbpOptions icbp_options;
    for (int l = static_cast<int>(model.layers.size()) - 1; l >= 0; --l)
        icbp_options.protectedLayers.push_back(l);
    accel::Accelerator icbp(
        board, image, accel::icbpPlacement(image, fvm, icbp_options));
    const auto icbp_faults = icbp.weightFaults();
    accel::MitigationReport icbp_report;
    icbp_report.rawFaults = icbp_faults.total;
    icbp_report.residualFaults = icbp_faults.total;
    add("ICBP (all layers)", icbp.observedModel(), icbp_report);

    board.softReset();
    table.print(std::cout);
    writeCsv(table, "results/ext_mitigation.csv");

    std::printf("\ntakeaway: deterministic faults defeat temporal "
                "redundancy; TMR/SECDED work but cost %u / %u extra "
                "BRAMs, ICBP costs none\n",
                lab.tmrOverheadBrams(), lab.secdedOverheadBrams());
    return 0;
}

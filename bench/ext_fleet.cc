/**
 * @file
 * Extension bench: the parallel fleet-campaign engine.
 *
 * The paper's evaluation is a cross product of campaigns — four boards
 * for the guardband study, five patterns, four temperatures, twin
 * KC705 dies — each an independent hours-long sweep on real hardware.
 * The simulated reproduction inherits that structure, so a fleet of
 * campaigns is embarrassingly parallel as long as the results stay a
 * pure function of the plan.
 *
 * This bench runs a 4-die x 3-pattern fleet (the Fig 1 boards under
 * the Fig 4 patterns) three ways and reports:
 *  (a) wall-clock speedup of the ThreadPool fleet over the serial one
 *      (target: >= 3x on >= 4 cores),
 *  (b) byte-identity of every per-job sweep against the serial run,
 *  (c) FvmCache traffic: a cold obtain() characterizes once per die,
 *      a warm one is served from memory/disk with the hit rate shown
 *      (read back from the telemetry registry, the same counters every
 *      consumer sees),
 *  (d) the observability artifacts themselves: a Chrome trace of the
 *      pooled fleet (results/ext_fleet_trace.json — drop it on
 *      ui.perfetto.dev), the merged metrics snapshot, and a sampled
 *      CPU profile of the whole run (results/profile_ext_fleet.folded
 *      for flamegraph tools, .html as a self-contained flame graph —
 *      the README "Profile a campaign" walkthrough).
 *
 * The run also appends one uvolt-timeline-v1 row (serial/parallel wall
 * clock, speedup, profile top-frames) to results/timeline.jsonl so
 * scripts/check_drift.py can flag cross-run drift.
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "harness/campaign.hh"
#include "harness/ledger.hh"
#include "harness/report.hh"
#include "harness/timeline.hh"
#include "util/bench.hh"
#include "util/format.hh"
#include "util/profiler.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace uvolt;

namespace
{

double
msSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
sameFleet(const harness::FleetResult &a, const harness::FleetResult &b)
{
    if (a.jobs.size() != b.jobs.size())
        return false;
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        const harness::SweepResult &p = a.jobs[i].sweep;
        const harness::SweepResult &q = b.jobs[i].sweep;
        if (p.points.size() != q.points.size())
            return false;
        for (std::size_t j = 0; j < p.points.size(); ++j) {
            if (p.points[j].vccBramMv != q.points[j].vccBramMv ||
                p.points[j].runCounts != q.points[j].runCounts ||
                p.points[j].perBramFaults != q.points[j].perBramFaults)
                return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    telemetry::Telemetry::setEnabled(true);
    // Continuous profiling for the whole run: the sampler only reads
    // span stacks, so the sweeps below stay bit-identical with it on.
    profiler::SpanProfiler &profiler = profiler::SpanProfiler::global();
    profiler.start();
    const std::string started_at = harness::nowIso8601();
    const auto run_start = std::chrono::steady_clock::now();
    const std::size_t workers = ThreadPool::hardwareWorkers();
    std::printf("# Extension: parallel fleet campaigns (4 dies x 3 "
                "patterns, %zu workers)\n\n",
                workers);

    const std::string cache_dir = "results/fleet_cache";
    std::filesystem::remove_all(cache_dir);
    harness::FvmCache cache(cache_dir);

    harness::Campaign campaign =
        harness::Campaign::onPlatforms(
            {"VC707", "ZC702", "KC705-A", "KC705-B"})
            .withPatterns({harness::PatternSpec::allOnes(),
                           harness::PatternSpec::fixed(0xAAAA),
                           harness::PatternSpec::fixed(0x0000)})
            .sweep(15)
            .cacheInto(cache);

    // --- (a) serial vs pooled wall-clock ---------------------------------
    auto serial_start = std::chrono::steady_clock::now();
    const harness::FleetResult serial = campaign.run().orFatal();
    const double serial_ms = msSince(serial_start);

    ThreadPool pool(workers);
    auto parallel_start = std::chrono::steady_clock::now();
    const harness::FleetResult parallel = campaign.run(pool).orFatal();
    const double parallel_ms = msSince(parallel_start);

    // --- (b) determinism across schedules --------------------------------
    const bool identical = sameFleet(serial, parallel);

    TextTable table({"engine", "jobs", "wall-clock (ms)", "speedup",
                     "bit-identical"});
    table.addRow({"serial (0 workers)",
                  std::to_string(serial.jobs.size()),
                  fmtDouble(serial_ms, 1), "1.0x", "reference"});
    table.addRow({strFormat("pool ({} workers)", workers),
                  std::to_string(parallel.jobs.size()),
                  fmtDouble(parallel_ms, 1),
                  strFormat("{:.2f}x", serial_ms / parallel_ms),
                  identical ? "yes" : "NO"});
    table.print(std::cout);
    writeCsv(table, "results/ext_fleet.csv");

    std::printf("\nper-die fault rates at Vcrash (reference pattern "
                "16'hFFFF):\n");
    for (const auto &die : parallel.dies) {
        std::printf("  %-8s (die %s): %8.1f faults/Mbit, %zu sweeps, "
                    "merged FVM %.1f%% fault-free\n",
                    die.platform.c_str(), die.dieId.c_str(),
                    die.faultsPerMbitAtVcrash, die.jobIndices.size(),
                    die.mergedFvm->faultFreeFraction() * 100.0);
    }
    std::printf("die-to-die variation (worst/best): %.1fx; twin boards "
                "KC705-A / KC705-B = %.1fx (paper Fig 7: 4.1x)\n",
                parallel.dieToDieRatio(),
                parallel.die("KC705-A").faultsPerMbitAtVcrash /
                    parallel.die("KC705-B").faultsPerMbitAtVcrash);

    // --- (c) FvmCache traffic --------------------------------------------
    // The fleet published each die's merged FVM; a consumer obtaining a
    // map now skips the characterization sweep entirely. The traffic is
    // read from the telemetry registry's fvmcache.* counters (deltas per
    // phase), not the cache's own struct.
    std::printf("\nFvmCache (%s):\n", cache.directory().c_str());
    auto cache_counters = [] {
        const auto snapshot = telemetry::Registry::global().metrics();
        return std::array<std::uint64_t, 4>{
            snapshot.counter("fvmcache.memory_hits"),
            snapshot.counter("fvmcache.disk_hits"),
            snapshot.counter("fvmcache.single_flight_waits"),
            snapshot.counter("fvmcache.misses")};
    };
    TextTable cache_table({"phase", "wall-clock (ms)", "memory hits",
                           "disk hits", "waits", "characterized",
                           "hit rate"});
    auto obtain_all = [&](const char *label) {
        const auto before = cache_counters();
        const auto start = std::chrono::steady_clock::now();
        for (const auto &die : parallel.dies) {
            const auto &spec = fpga::findPlatform(die.platform);
            cache
                .obtain(spec, harness::PatternSpec::allOnes(), 15,
                        [&]() -> Expected<harness::Fvm> {
                            // A real consumer would re-run the die's
                            // characterization campaign here.
                            return harness::Campaign::onPlatform(
                                       die.platform)
                                .sweep(15)
                                .run()
                                .orFatal()
                                .dies.front()
                                .mergedFvm.value();
                        })
                .orFatal();
        }
        const double ms = msSince(start);
        const auto after = cache_counters();
        const std::uint64_t mem = after[0] - before[0];
        const std::uint64_t disk = after[1] - before[1];
        const std::uint64_t waits = after[2] - before[2];
        const std::uint64_t misses = after[3] - before[3];
        const std::uint64_t served = mem + disk + waits;
        const double rate = served + misses
            ? static_cast<double>(served) /
                  static_cast<double>(served + misses)
            : 0.0;
        cache_table.addRow({label, fmtDouble(ms, 1),
                            std::to_string(mem), std::to_string(disk),
                            std::to_string(waits),
                            std::to_string(misses),
                            strFormat("{:.0f}%", rate * 100.0)});
    };
    obtain_all("warm (memory)");
    cache.evictMemory();
    obtain_all("warm (disk only)");
    cache_table.print(std::cout);
    writeCsv(cache_table, "results/ext_fleet_cache.csv");

    // --- (d) observability artifacts -------------------------------------
    profiler.stop();
    const profiler::Profile profile = profiler.snapshot();
    harness::writeChromeTrace("results/ext_fleet_trace.json");
    const auto snapshot = telemetry::Registry::global().metrics();
    harness::writeMetricsJson(snapshot, "results/ext_fleet_metrics.json");
    harness::writeMetricsCsv(snapshot, "results/ext_fleet_metrics.csv");
    profiler::writeFolded(profile, "results/profile_ext_fleet.folded");
    harness::writeFlameGraph(
        profile,
        strFormat("ext_fleet — {} samples @ {}us", profile.samples,
                  profile.intervalUs),
        "results/profile_ext_fleet.html");
    std::printf("\ntelemetry: %zu spans -> results/ext_fleet_trace.json "
                "(open in ui.perfetto.dev); metrics snapshot -> "
                "results/ext_fleet_metrics.{json,csv}\n",
                telemetry::Registry::global().traceEvents().size());
    std::printf("profile: %llu samples (%zu stacks) -> "
                "results/profile_ext_fleet.{folded,html}\n",
                static_cast<unsigned long long>(profile.samples),
                profile.folded.size());
    for (const auto &frame : profile.topFrames(5)) {
        std::printf("  %-24s self %6llu  total %6llu\n",
                    frame.name.c_str(),
                    static_cast<unsigned long long>(frame.self),
                    static_cast<unsigned long long>(frame.total));
    }

    // --- perf timeline row ------------------------------------------------
    {
        harness::TimelineRow row;
        row.tool = "ext_fleet";
        row.gitSha = bench::buildGitSha();
        row.startedAtIso = started_at;
        row.configDigest = harness::configDigest(strFormat(
            "ext_fleet;dies=4;patterns=3;sweep=15;workers={}", workers));
        row.runId = strFormat("{}-{}", row.configDigest.substr(0, 8),
                              started_at);
        row.workers = workers;
        row.durationMs = msSince(run_start);
        row.metrics = {{"serial_ms", serial_ms},
                       {"parallel_ms", parallel_ms},
                       {"speedup", serial_ms / parallel_ms}};
        for (const auto &frame : profile.topFrames(5))
            row.topFrames.emplace_back(frame.name, frame.self);
        harness::Timeline timeline;
        if (timeline.append(row).ok())
            std::printf("timeline: appended run %s -> %s\n",
                        row.runId.c_str(), timeline.path().c_str());
    }
    std::printf("  pmbus: %llu setpoint writes (%llu retried), link "
                "retransmits %llu; fleet: %llu jobs, cache hit rate "
                "above\n",
                static_cast<unsigned long long>(
                    snapshot.counter("pmbus.setpoint.writes")),
                static_cast<unsigned long long>(
                    snapshot.counter("pmbus.setpoint.retries")),
                static_cast<unsigned long long>(
                    snapshot.counter("pmbus.link.retransmits")),
                static_cast<unsigned long long>(
                    snapshot.counter("fleet.jobs")));

    std::printf("\nshape: the pooled fleet must report >= 3x speedup on "
                ">= 4 cores with\nbit-identical sweeps, and the warm "
                "cache must serve every die without a\nsingle "
                "characterization sweep\n");
    return identical && serial_ms / parallel_ms >= 1.0 ? 0 : 1;
}

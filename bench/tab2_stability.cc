/**
 * @file
 * Regenerates paper Table II: fault-rate stability over 100 consecutive
 * runs at Vcrash with pattern 16'hFFFF — average, minimum, maximum, and
 * standard deviation per Mbit for every platform. The paper's point:
 * run-to-run variation is negligible, so undervolting faults behave
 * deterministically over time.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Table II: fault stability over 100 consecutive runs "
                "at Vcrash (16'hFFFF)\n\n");

    TextTable table({"parameter", "VC707", "ZC702", "KC705-A", "KC705-B"});
    std::vector<std::string> avg{"AVERAGE fault rate*"};
    std::vector<std::string> minimum{"MINIMUM fault rate*"};
    std::vector<std::string> maximum{"MAXIMUM fault rate*"};
    std::vector<std::string> stddev{"STD. DEV of fault rates"};

    for (const auto &spec : fpga::platformCatalog()) {
        pmbus::Board board(spec);
        harness::SweepOptions options;
        options.runsPerLevel = 100;
        options.collectPerBram = false;
        options.fromMv = spec.calib.bramVcrashMv; // Vcrash only
        const harness::SweepResult sweep =
            harness::runCriticalSweep(board, options);
        const auto &point = sweep.atVcrash();

        const double to_mbit = fpga::bitsPerMbit /
            static_cast<double>(board.device().totalBits());
        avg.push_back(fmtDouble(point.runStats.mean() * to_mbit, 0));
        minimum.push_back(
            fmtDouble(point.runStats.minimum() * to_mbit, 0));
        maximum.push_back(
            fmtDouble(point.runStats.maximum() * to_mbit, 0));
        stddev.push_back(fmtDouble(point.runStats.stddev() * to_mbit, 1));
    }
    table.addRow(std::move(avg));
    table.addRow(std::move(minimum));
    table.addRow(std::move(maximum));
    table.addRow(std::move(stddev));
    table.print(std::cout);
    writeCsv(table, "results/tab2_stability.csv");
    std::printf("* per 1 Mbit. paper row: avg 652/153/254/60, "
                "min 630/140/237/51, max 669/162/264/69, "
                "stddev 7.3/5.9/4.8/1.8\n");
    return 0;
}

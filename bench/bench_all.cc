/**
 * @file
 * The unified benchmark binary: every hot path of the library on one
 * UVOLT_BENCHMARK harness, one results table, one schema-versioned
 * BENCH_uvolt.json that scripts/check_regression.py gates CI with.
 *
 * Coverage: the sweep inner loop (telemetry off and on), BRAM readback
 * and device-wide fault counting at Vcrash, fleet fan-out at 0/1/8
 * workers, the FvmCache hit path, CRC-16 frame encode, SECDED decode,
 * k-means clustering, weight quantization, ICBP placement, and MNIST
 * inference/generation. Not a paper figure — engineering telemetry for
 * the simulator itself (the old micro_perf binary, re-homed).
 *
 * After the suite, the telemetry off/on sweep benches are compared and
 * written to results/ext_telemetry.csv: the "off" row is the
 * instrumented build paying only the Telemetry::enabled() branch; run
 * the same bench from a -DUVOLT_TELEMETRY=OFF build (the "compiled"
 * column flips to "no") to compare against fully compiled-out code —
 * the disabled overhead must stay under 2 %.
 */

#include <cstdio>
#include <iostream>

#include "accel/placement.hh"
#include "accel/secded.hh"
#include "accel/weight_image.hh"
#include "data/synthetic.hh"
#include "harness/campaign.hh"
#include "harness/fvm.hh"
#include "harness/ledger.hh"
#include "harness/timeline.hh"
#include "mem/catalog.hh"
#include "mem/sweep.hh"
#include "nn/network.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "pmbus/serial_link.hh"
#include "util/bench.hh"
#include "util/cli.hh"
#include "util/format.hh"
#include "util/kmeans.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"

namespace
{

using namespace uvolt;

pmbus::Board &
vc707()
{
    static pmbus::Board board(fpga::findPlatform("VC707"));
    return board;
}

/** Park the shared board at Vcrash with the reference pattern loaded. */
void
parkAtVcrash(pmbus::Board &board)
{
    board.device().fillAll(0xFFFF);
    board.setVccBramMv(board.spec().calib.bramVcrashMv);
    board.startReferenceRun();
}

UVOLT_BENCHMARK(BM_BramReadbackAtVcrash)
{
    auto &board = vc707();
    parkAtVcrash(board);
    std::uint32_t bram = 0;
    for (auto _ : state) {
        bench::doNotOptimize(board.readBramToHost(bram));
        bram = (bram + 1) % board.device().bramCount();
    }
    state.setBytesPerIteration(fpga::bramRows * 2);
    board.softReset();
}

/** One sweep inner-loop pass: count faults across the whole device. */
std::uint64_t
deviceFaultPass(pmbus::Board &board)
{
    return board.countDeviceFaults();
}

UVOLT_BENCHMARK(BM_DeviceFaultCount)
{
    auto &board = vc707();
    parkAtVcrash(board);
    for (auto _ : state)
        bench::doNotOptimize(deviceFaultPass(board));
    board.softReset();
}

/**
 * The memo-defeating variant: every iteration draws fresh supply
 * jitter, so the effective voltage changes and the count streams the
 * packed threshold ladders for real instead of replaying the
 * (content epoch, voltage) memo BM_DeviceFaultCount converges to.
 */
UVOLT_BENCHMARK(BM_DeviceFaultCountFreshJitter)
{
    auto &board = vc707();
    parkAtVcrash(board);
    for (auto _ : state) {
        board.startRun();
        bench::doNotOptimize(board.countDeviceFaults());
    }
    board.softReset();
}

UVOLT_BENCHMARK(BM_SweepInnerLoopTelemetryOff)
{
    auto &board = vc707();
    parkAtVcrash(board);
    telemetry::Telemetry::setEnabled(false);
    for (auto _ : state)
        bench::doNotOptimize(deviceFaultPass(board));
    board.softReset();
}

UVOLT_BENCHMARK(BM_SweepInnerLoopTelemetryOn)
{
    auto &board = vc707();
    parkAtVcrash(board);
    telemetry::Telemetry::setEnabled(true);
    for (auto _ : state)
        bench::doNotOptimize(deviceFaultPass(board));
    telemetry::Telemetry::setEnabled(false);
    board.softReset();
}

/**
 * A small but real fleet: 4 dies x 2 patterns = 8 jobs, tiny sweeps,
 * no per-BRAM maps, no ledger — the scheduling overhead and scaling of
 * FleetEngine itself, not the sweep arithmetic.
 */
harness::Campaign
fanoutCampaign()
{
    harness::Campaign campaign =
        harness::Campaign::onPlatforms(
            {"VC707", "ZC702", "KC705-A", "KC705-B"})
            .withPatterns({harness::PatternSpec::allOnes(),
                           harness::PatternSpec::fixed(0x0000)});
    campaign.sweep(2).stepMv(50).perBramMaps(false).ledgerUnder("");
    return campaign;
}

void
runFanout(bench::State &state, std::size_t workers)
{
    const harness::Campaign campaign = fanoutCampaign();
    if (workers == 0) {
        for (auto _ : state)
            bench::doNotOptimize(campaign.run().orFatal().jobs.size());
    } else {
        ThreadPool pool(workers);
        for (auto _ : state)
            bench::doNotOptimize(campaign.run(pool).orFatal().jobs.size());
    }
    state.setItemsPerIteration(8); // jobs per fleet run
}

UVOLT_BENCHMARK(BM_FleetFanout0Workers) { runFanout(state, 0); }
UVOLT_BENCHMARK(BM_FleetFanout1Worker) { runFanout(state, 1); }
UVOLT_BENCHMARK(BM_FleetFanout8Workers) { runFanout(state, 8); }

/**
 * The non-BRAM backends' sweep arithmetic: one iteration counts every
 * fault on the device at Vcrash with fresh jitter each pass (the memo
 * never hits), streaming the generalized mask ladders. HBM's ladders
 * hold whole-lane masks, SRAM's single bits — the two granularities
 * bracket the MaskLadder popcount path.
 */
void
runMemFaultCount(bench::State &state, const char *name)
{
    const auto device = mem::makeDevice(name);
    device->fill(0xFFFF);
    const double v_crash = device->traits().vcrashMv / 1000.0;
    double wiggle = 0.0;
    for (auto _ : state) {
        std::uint64_t total = 0;
        const double v = v_crash + wiggle;
        for (std::uint32_t d = 0; d < device->domainCount(); ++d)
            total += static_cast<std::uint64_t>(
                device->countDomainFaults(d, v));
        bench::doNotOptimize(total);
        wiggle = wiggle < 1e-5 ? wiggle + 1e-7 : 0.0;
    }
    state.setItemsPerIteration(device->domainCount());
}

UVOLT_BENCHMARK(BM_HbmFaultCount) { runMemFaultCount(state, "HBM2-A"); }
UVOLT_BENCHMARK(BM_SramFaultCount)
{
    runMemFaultCount(state, "MORS-SRAM-A");
}

/** A full backend-generic sweep of one HBM stack, Vmin to Vcrash. */
UVOLT_BENCHMARK(BM_MemSweepHbm)
{
    const auto device = mem::makeDevice("HBM2-A");
    device->fill(0xFFFF);
    mem::MemSweepOptions options;
    options.runsPerLevel = 3;
    options.seed = 11;
    for (auto _ : state)
        bench::doNotOptimize(
            mem::runMemSweep(*device, options).points.size());
}

UVOLT_BENCHMARK(BM_FvmCacheHit)
{
    auto &board = vc707();
    Rng rng(11);
    std::vector<int> faults(board.device().bramCount());
    for (auto &f : faults)
        f = rng.chance(0.39) ? 0 : static_cast<int>(rng.uniformInt(1, 99));
    const auto characterize = [&]() -> Expected<harness::Fvm> {
        return harness::Fvm("bench", board.device().floorplan(), faults);
    };
    harness::FvmCache cache("results/bench_cache");
    const auto pattern = harness::PatternSpec::allOnes();
    // Prime the memory layer; every timed obtain() is then a pure hit.
    cache.obtain(board.spec(), pattern, 15, characterize).orFatal();
    for (auto _ : state) {
        bench::doNotOptimize(
            cache.obtain(board.spec(), pattern, 15, characterize)
                .orFatal()
                ->bramCount());
    }
}

UVOLT_BENCHMARK(BM_CrcFrameEncode)
{
    std::vector<std::uint16_t> row(fpga::bramRows);
    Rng rng(5);
    for (auto &word : row)
        word = static_cast<std::uint16_t>(rng.uniformInt(0, 0xFFFF));
    pmbus::SerialLink link;
    for (auto _ : state) {
        const pmbus::SerialFrame frame =
            link.transfer(pmbus::SerialLink::packWords(row));
        bench::doNotOptimize(frame.crc);
    }
    state.setBytesPerIteration(fpga::bramRows * 2);
}

UVOLT_BENCHMARK(BM_SecdedDecode)
{
    constexpr std::size_t words = 1024;
    Rng rng(9);
    std::vector<std::pair<std::uint16_t, std::uint8_t>> rows(words);
    for (auto &[data, check] : rows) {
        data = static_cast<std::uint16_t>(rng.uniformInt(0, 0xFFFF));
        check = accel::secdedEncode(data);
        if (rng.chance(0.1)) // a sprinkle of single-bit upsets
            data ^= static_cast<std::uint16_t>(
                1u << rng.uniformInt(0, 15));
    }
    for (auto _ : state) {
        std::uint32_t corrected = 0;
        for (const auto &[data, check] : rows)
            corrected += accel::secdedDecode(data, check).status ==
                         accel::SecdedStatus::Corrected;
        bench::doNotOptimize(corrected);
    }
    state.setItemsPerIteration(words);
}

UVOLT_BENCHMARK(BM_KMeansClustering)
{
    Rng rng(7);
    std::vector<double> rates(2060);
    for (auto &rate : rates)
        rate = rng.chance(0.39) ? 0.0 : rng.exponential(100.0);
    for (auto _ : state)
        bench::doNotOptimize(kMeans1d(rates, 3));
}

UVOLT_BENCHMARK(BM_QuantizeMnistModel)
{
    nn::Network net({784, 1024, 512, 256, 128, 10});
    net.initWeights(1);
    for (auto _ : state)
        bench::doNotOptimize(nn::quantize(net));
}

UVOLT_BENCHMARK(BM_IcbpPlacement)
{
    nn::Network net({784, 1024, 512, 256, 128, 10});
    net.initWeights(1);
    const accel::WeightImage image(nn::quantize(net));
    std::vector<int> faults(2060);
    Rng rng(3);
    for (auto &f : faults)
        f = rng.chance(0.39) ? 0 : static_cast<int>(rng.uniformInt(1, 99));
    const harness::Fvm fvm(
        "bench", vc707().device().floorplan(), std::move(faults));
    for (auto _ : state)
        bench::doNotOptimize(accel::icbpPlacement(image, fvm));
}

UVOLT_BENCHMARK(BM_MnistInference)
{
    static const nn::Network net = [] {
        nn::Network n({784, 1024, 512, 256, 128, 10});
        n.initWeights(1);
        return n;
    }();
    static const data::Dataset set = data::makeMnistLike(64, 5);
    std::size_t i = 0;
    for (auto _ : state) {
        bench::doNotOptimize(net.classify(set.sample(i)));
        i = (i + 1) % set.size();
    }
    state.setItemsPerIteration(1);
}

UVOLT_BENCHMARK(BM_MnistGeneration)
{
    std::uint64_t seed = 0;
    for (auto _ : state)
        bench::doNotOptimize(data::makeMnistLike(32, ++seed));
    state.setItemsPerIteration(32);
}

/**
 * The batched-evaluation tentpole: one iteration is one full
 * 10 000-image evaluateError() pass over a shared synthetic MNIST set
 * with a mid-size MLP. Three variants share net and data so their
 * ratios isolate the engine: the per-sample scalar reference, the
 * blocked/vectorized batched kernel, and the batched kernel fanned over
 * an 8-worker pool. All three return bit-identical error rates; the
 * perf gate tracks each one and the speedup is asserted in CI via the
 * committed baseline.
 */
const nn::Network &
evalNet()
{
    static const nn::Network net = [] {
        nn::Network n({784, 256, 128, 10});
        n.initWeights(1);
        return n;
    }();
    return net;
}

const data::Dataset &
evalSet()
{
    static const data::Dataset set = data::makeMnistLike(10000, 5);
    return set;
}

UVOLT_BENCHMARK(BM_MnistEvalScalar)
{
    const nn::Network &net = evalNet();
    const data::Dataset &set = evalSet();
    for (auto _ : state)
        bench::doNotOptimize(net.evaluateErrorScalar(set));
    state.setItemsPerIteration(set.size());
}

UVOLT_BENCHMARK(BM_MnistEvalBatched)
{
    const nn::Network &net = evalNet();
    const data::Dataset &set = evalSet();
    for (auto _ : state)
        bench::doNotOptimize(net.evaluateError(set, nn::EvalOptions{}));
    state.setItemsPerIteration(set.size());
}

UVOLT_BENCHMARK(BM_MnistEvalBatched8Workers)
{
    const nn::Network &net = evalNet();
    const data::Dataset &set = evalSet();
    ThreadPool pool(8);
    for (auto _ : state) {
        bench::doNotOptimize(
            net.evaluateError(set, nn::EvalOptions{.pool = &pool}));
    }
    state.setItemsPerIteration(set.size());
}

const bench::BenchResult *
findResult(const std::vector<bench::BenchResult> &results,
           const std::string &name)
{
    for (const auto &result : results)
        if (result.name == name)
            return &result;
    return nullptr;
}

/**
 * The telemetry-overhead comparison micro_perf used to print: min
 * ns/iter of the sweep inner loop with recording off vs on, written to
 * results/ext_telemetry.csv when both benches ran.
 */
void
writeTelemetryComparison(const std::vector<bench::BenchResult> &results)
{
    const auto *off = findResult(results, "BM_SweepInnerLoopTelemetryOff");
    const auto *on = findResult(results, "BM_SweepInnerLoopTelemetryOn");
    if (!off || !on || off->wall.minNs <= 0.0)
        return;
    const char *compiled =
        telemetry::Telemetry::compiledIn() ? "yes" : "no";
    TextTable table({"telemetry", "compiled in", "best pass (ms)",
                     "vs off"});
    table.addRow({"off", compiled, fmtDouble(off->wall.minNs / 1e6, 3),
                  "1.000x"});
    table.addRow({"on", compiled, fmtDouble(on->wall.minNs / 1e6, 3),
                  strFormat("{:.3f}x", on->wall.minNs / off->wall.minNs)});
    std::printf("\n# sweep inner loop, telemetry off vs on (device-wide "
                "fault count at Vcrash)\n");
    table.print(std::cout);
    writeCsv(table, "results/ext_telemetry.csv");
    std::printf("rebuild with -DUVOLT_TELEMETRY=OFF to compare the "
                "compiled-out baseline\n");
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Unified benchmark suite; emits BENCH_uvolt.json for "
                  "scripts/check_regression.py");
    cli.addString("out", "BENCH_uvolt.json",
                  "output path of the uvolt-bench-v1 JSON document");
    cli.addInt("repeats", 9, "timed repeats per benchmark");
    cli.addDouble("min-time-ms", 20.0,
                  "calibrated minimum time per repeat");
    cli.addString("filter", "", "substring filter on benchmark names");
    cli.addBool("list", "list registered benchmarks and exit");
    cli.addString("timeline", harness::Timeline::defaultPath(),
                  "perf-timeline JSONL to append to (\"\" disables)");
    if (!cli.parse(argc, argv))
        return 0;

    if (cli.getBool("list")) {
        for (const auto &name : bench::Registry::global().names())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    bench::BenchOptions options;
    options.repeats = static_cast<int>(cli.getInt("repeats"));
    options.minTimeMs = cli.getDouble("min-time-ms");
    options.filter = cli.getString("filter");

    const std::vector<bench::BenchResult> results =
        bench::Registry::global().runAll(options);
    if (results.empty()) {
        std::fprintf(stderr, "no benchmark matches filter '%s'\n",
                     options.filter.c_str());
        return 1;
    }

    bench::resultsTable(results).print(std::cout);
    writeTelemetryComparison(results);

    const std::string out = cli.getString("out");
    if (!bench::writeBenchJson(results, options, out))
        return 1;
    std::printf("\nwrote %zu benchmark(s) to %s (git %s)\n",
                results.size(), out.c_str(),
                bench::buildGitSha().c_str());

    // One uvolt-timeline-v1 row per suite run: median ns/iter of every
    // bench, keyed by name, for scripts/check_drift.py's history gate.
    if (const std::string timeline_path = cli.getString("timeline");
        !timeline_path.empty()) {
        double total_ms = 0.0;
        harness::TimelineRow row;
        row.tool = "bench_all";
        row.gitSha = bench::buildGitSha();
        row.startedAtIso = harness::nowIso8601();
        row.configDigest = harness::configDigest(
            strFormat("bench_all;repeats={};min_time_ms={};filter={}",
                      options.repeats, options.minTimeMs,
                      options.filter));
        row.runId = strFormat("{}-{}", row.configDigest.substr(0, 8),
                              row.startedAtIso);
        row.workers = 1;
        for (const auto &result : results) {
            row.metrics.emplace_back(result.name + ".median_ns",
                                     result.wall.medianNs);
            total_ms += result.wall.medianNs / 1e6;
        }
        row.durationMs = total_ms;
        harness::Timeline timeline(timeline_path);
        if (timeline.append(row).ok())
            std::printf("timeline: appended run %s -> %s\n",
                        row.runId.c_str(), timeline.path().c_str());
    }
    return 0;
}

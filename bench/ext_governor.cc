/**
 * @file
 * Extension bench: online minimum-voltage tracking with canary BRAMs.
 *
 * The paper measures Vmin offline and shows it moves with temperature
 * (ITD, Fig 8). This bench closes the loop: a governor keeps a handful
 * of the chip's weakest spare BRAMs as canaries and walks VCCBRAM down
 * until they fault, holding one 10 mV guard step above. Across the
 * heat-chamber range the tracked setpoint follows the ITD-shifted
 * boundary, harvesting extra margin at higher temperatures that a
 * static offline Vmin would leave on the table.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "harness/governor.hh"
#include "pmbus/board.hh"
#include "power/power_model.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Extension: canary-based online Vmin tracking vs "
                "temperature (VC707)\n\n");

    pmbus::Board board(fpga::findPlatform("VC707"));
    harness::SweepOptions options;
    options.runsPerLevel = 5;
    const harness::SweepResult sweep =
        harness::runCriticalSweep(board, options);
    const harness::Fvm fvm =
        harness::fvmFromSweep(sweep, board.device().floorplan());
    const power::RailPowerModel rail(board.spec());

    TextTable table({"ambient", "tracked setpoint", "steps to settle",
                     "BRAM power (W)", "saving vs static Vmin"});
    const double static_vmin_w =
        rail.bramPower(board.spec().calib.bramVminMv / 1000.0);
    for (double temp : {50.0, 60.0, 70.0, 80.0}) {
        board.softReset();
        board.setAmbientC(temp);
        harness::VoltageGovernor governor(board, fvm, {});
        const auto trace = governor.settle();
        const double watts =
            rail.bramPower(governor.setpointMv() / 1000.0);
        table.addRow({fmtDouble(temp, 0) + " degC",
                      fmtVolts(governor.setpointMv() / 1000.0),
                      std::to_string(trace.size()),
                      fmtDouble(watts, 4),
                      fmtPercent(1.0 - watts / static_vmin_w)});
    }
    board.setAmbientC(50.0);
    board.softReset();
    table.print(std::cout);
    writeCsv(table, "results/ext_governor.csv");

    std::printf("\nshape: the tracked setpoint descends with "
                "temperature (ITD), recovering power a static offline "
                "Vmin forfeits; the canaries are the chip's weakest "
                "cells under the worst-case pattern, so canary-clean "
                "implies payload-clean with margin\n");
    return 0;
}

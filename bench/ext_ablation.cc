/**
 * @file
 * Extension bench (not a paper figure): fault-model shape ablations
 * called out in DESIGN.md. The chip's weak-cell population is re-drawn
 * under three shapes and the Section-III experiment (worst-vs-ICBP
 * placement of the Forest model on ZC702 at Vcrash) is repeated:
 *
 *  - full model  : spatial correlation + column clustering (default),
 *  - no columns  : per-BRAM counts identical, cells IID within a BRAM,
 *  - fully IID   : no spatial field either (only the heavy tail).
 *
 * Takeaways: (1) the FVM-driven placement gap (worst vs ICBP fault
 * counts) exists under every shape because it derives from the
 * per-BRAM heavy tail, which is preserved by construction; (2) at this
 * small-model scale the *error* columns sit inside sampling noise —
 * the accuracy consequence of column clustering only becomes visible
 * at MNIST scale (see the probe record in DESIGN.md / EXPERIMENTS.md).
 */

#include <cstdio>
#include <iostream>

#include "accel/accelerator.hh"
#include "accel/placement.hh"
#include "accel/weight_image.hh"
#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

namespace
{

struct Shape
{
    const char *name;
    vmodel::VariationParams params;
};

} // namespace

int
main()
{
    std::printf("# Extension: fault-model shape ablation "
                "(Forest on ZC702 at Vcrash)\n\n");

    const nn::ZooSpec zoo = nn::paperForestSpec();
    const nn::Network net = nn::trainOrLoad(zoo);
    const nn::QuantizedModel model = nn::quantize(net);
    const data::Dataset test_set = nn::makeTestSet(zoo, 4000);
    const accel::WeightImage image(model);
    const double inherent =
        model.toNetwork().evaluateError(test_set);

    Shape shapes[3];
    shapes[0] = {"full model", {}};
    shapes[1] = {"no column clustering", {}};
    shapes[1].params.weakColumnShare = 0.0;
    shapes[2] = {"fully IID", {}};
    shapes[2].params.weakColumnShare = 0.0;
    shapes[2].params.spatialWeight = 0.0;

    TextTable table({"fault-model shape", "faults(worst)", "err(worst)",
                     "faults(ICBP)", "err(ICBP)"});
    for (const Shape &shape : shapes) {
        pmbus::Board board(fpga::findPlatform("ZC702"), shape.params);
        harness::SweepOptions options;
        options.runsPerLevel = 5;
        const harness::SweepResult sweep =
            harness::runCriticalSweep(board, options);
        const harness::Fvm fvm =
            harness::fvmFromSweep(sweep, board.device().floorplan());

        board.setVccBramMv(board.spec().calib.bramVcrashMv);
        board.startReferenceRun();

        // Worst-case (most vulnerable BRAMs) vs all-layer ICBP.
        auto order = fvm.bramsByReliability();
        std::vector<std::uint32_t> worst(
            order.rbegin(), order.rbegin() + image.logicalBramCount());
        accel::Accelerator bad(board, image,
                               accel::Placement(std::move(worst)));
        const auto bad_faults = bad.weightFaults().total;
        const double bad_error = bad.classificationError(test_set);

        accel::IcbpOptions icbp_options;
        for (int l = static_cast<int>(model.layers.size()) - 1; l >= 0;
             --l)
            icbp_options.protectedLayers.push_back(l);
        accel::Accelerator icbp(
            board, image,
            accel::icbpPlacement(image, fvm, icbp_options));
        const auto icbp_faults = icbp.weightFaults().total;
        const double icbp_error = icbp.classificationError(test_set);

        table.addRow({shape.name, std::to_string(bad_faults),
                      fmtPercent(bad_error, 2),
                      std::to_string(icbp_faults),
                      fmtPercent(icbp_error, 2)});
        board.softReset();
    }
    std::printf("inherent error: %.2f%%\n\n", inherent * 100.0);
    table.print(std::cout);
    writeCsv(table, "results/ext_ablation.csv");
    return 0;
}

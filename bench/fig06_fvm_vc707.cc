/**
 * @file
 * Regenerates paper Fig 6: the Fault Variation Map of VC707, i.e. every
 * BRAM's fault count accumulated while scaling VCCBRAM from Vmin =
 * 0.61 V to Vcrash = 0.54 V, mapped to its physical (X, Y) site.
 * Rendered as ASCII art (the paper renders a colored floorplan): ' '
 * for empty sites, '.' for fault-free BRAMs, '1'-'9'/'#' buckets by
 * fault count. A CSV with exact (x, y, faults) triplets is written for
 * external plotting.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 6: Fault Variation Map, VC707, Vmin=0.61V -> "
                "Vcrash=0.54V\n\n");

    pmbus::Board board(fpga::findPlatform("VC707"));
    harness::SweepOptions options;
    options.runsPerLevel = 9;
    const harness::SweepResult sweep =
        harness::runCriticalSweep(board, options);
    const harness::Fvm fvm =
        harness::fvmFromSweep(sweep, board.device().floorplan());

    std::printf("%s\n", fvm.render(board.device().floorplan()).c_str());
    std::printf("' ' empty site, '.' fault-free BRAM, 1-9/# fault "
                "buckets; %u BRAMs total, %.1f%% fault-free\n",
                fvm.bramCount(), fvm.faultFreeFraction() * 100.0);

    TextTable csv({"x", "y", "faults"});
    for (std::uint32_t b = 0; b < fvm.bramCount(); ++b) {
        const fpga::Site site = board.device().floorplan().siteOf(b);
        csv.addRow({std::to_string(site.x), std::to_string(site.y),
                    std::to_string(fvm.faultsOf(b))});
    }
    writeCsv(csv, "results/fig06_fvm_vc707.csv");
    return 0;
}

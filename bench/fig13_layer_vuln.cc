/**
 * @file
 * Regenerates paper Fig 13: statistical analysis of the NN's layers —
 * size in BRAMs, number of undervolting faults observed at Vcrash with
 * the default placement, and the normalized per-fault vulnerability
 * from random fault injection. Paper shape: outer layers are larger
 * (so they absorb more faults), inner layers are more vulnerable per
 * fault (Layer4 ~6x Layer0), which is why ICBP protects the last layer.
 */

#include <cstdio>
#include <iostream>

#include "accel/accelerator.hh"
#include "accel/placement.hh"
#include "accel/vulnerability.hh"
#include "accel/weight_image.hh"
#include "nn/model_zoo.hh"
#include "nn/quantizer.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

int
main()
{
    std::printf("# Fig 13: per-layer size, faults at Vcrash, and "
                "normalized vulnerability (VC707 / MNIST)\n\n");

    const nn::ZooSpec zoo = nn::paperMnistSpec();
    const nn::Network net = nn::trainOrLoad(zoo);
    const nn::QuantizedModel model = nn::quantize(net);
    const data::Dataset test_set = nn::makeTestSet(zoo, 4000);

    // Observed faults per layer at Vcrash, default placement.
    const auto &spec = fpga::findPlatform("VC707");
    pmbus::Board board(spec);
    const accel::WeightImage image(model);
    // Same vulnerability-oblivious baseline as the Fig 11/14 benches.
    accel::Accelerator accel(
        board, image,
        accel::randomPlacement(image, board.device().bramCount(), 5));
    board.setVccBramMv(spec.calib.bramVcrashMv);
    board.startReferenceRun();
    const accel::WeightFaultReport faults = accel.weightFaults();
    board.softReset();

    // Per-fault sensitivity from controlled random injection.
    accel::InjectionOptions options;
    // Dose chosen well below the output layer's saturation point so
    // the per-fault comparison stays linear (2 BRAMs hold only ~9k "1"
    // bits; thousands of faults would saturate the small layers).
    options.faultsPerTrial = 100;
    options.trials = 5;
    options.evalLimit = nn::paperEvalLimit;
    const auto vulnerability =
        accel::analyzeLayerVulnerability(model, test_set, options);

    TextTable table({"layer", "#BRAMs", "#faults @ Vcrash",
                     "error delta / 100 faults",
                     "normalized vulnerability"});
    for (std::size_t l = 0; l < vulnerability.size(); ++l) {
        table.addRow({"Layer" + std::to_string(l),
                      std::to_string(vulnerability[l].brams),
                      std::to_string(faults.faultsPerLayer[l]),
                      fmtPercent(vulnerability[l].errorDelta, 3),
                      fmtDouble(vulnerability[l].normalizedVulnerability,
                                2)});
    }
    table.print(std::cout);
    writeCsv(table, "results/fig13_layer_vuln.csv");

    const double ratio = vulnerability.front().errorDelta > 0.0
        ? vulnerability.back().errorDelta /
            vulnerability.front().errorDelta
        : 0.0;
    std::printf("\nLayer%zu / Layer0 per-fault vulnerability: %.1fx "
                "(paper: ~6x); paper shape: inner layers more "
                "vulnerable, outer layers larger\n",
                vulnerability.size() - 1, ratio);
    return 0;
}

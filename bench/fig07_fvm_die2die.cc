/**
 * @file
 * Regenerates paper Fig 7: the FVMs of the two identical KC705 samples
 * at Vcrash differ in both rate and location — die-to-die process
 * variation. The paper's example: BRAM#(116,1) is high-vulnerable on
 * KC705-A but low-vulnerable on KC705-B. This bench renders both maps,
 * quantifies their disagreement, and prints the most extreme
 * "vulnerable-on-A, clean-on-B" sites.
 */

#include <cstdio>
#include <iostream>

#include "harness/experiment.hh"
#include "harness/fvm.hh"
#include "pmbus/board.hh"
#include "util/table.hh"

using namespace uvolt;

namespace
{

harness::Fvm
mapOf(const char *platform)
{
    pmbus::Board board(fpga::findPlatform(platform));
    harness::SweepOptions options;
    options.runsPerLevel = 9;
    const harness::SweepResult sweep =
        harness::runCriticalSweep(board, options);
    return harness::fvmFromSweep(sweep, board.device().floorplan());
}

} // namespace

int
main()
{
    std::printf("# Fig 7: FVMs of two identical KC705 samples at Vcrash "
                "(die-to-die variation)\n");

    const harness::Fvm map_a = mapOf("KC705-A");
    const harness::Fvm map_b = mapOf("KC705-B");
    const fpga::Floorplan plan = fpga::Floorplan::columnGrid(
        fpga::findPlatform("KC705-A").bramCount,
        fpga::findPlatform("KC705-A").columnHeight);

    std::printf("\n(a) KC705-A\n%s", map_a.render(plan).c_str());
    std::printf("\n(b) KC705-B\n%s", map_b.render(plan).c_str());

    // Quantify the disagreement.
    int a_only = 0, b_only = 0, both = 0, neither = 0;
    for (std::uint32_t b = 0; b < map_a.bramCount(); ++b) {
        const bool fa = map_a.faultsOf(b) > 0;
        const bool fb = map_b.faultsOf(b) > 0;
        a_only += (fa && !fb);
        b_only += (!fa && fb);
        both += (fa && fb);
        neither += (!fa && !fb);
    }
    std::printf("\nfaulty on A only: %d, on B only: %d, on both: %d, "
                "on neither: %d (of %u BRAMs)\n",
                a_only, b_only, both, neither, map_a.bramCount());

    // The paper's example site class: high on A, clean on B.
    TextTable examples({"site (y,x)", "faults on KC705-A",
                        "faults on KC705-B"});
    int listed = 0;
    for (std::uint32_t b = 0; b < map_a.bramCount() && listed < 5; ++b) {
        if (map_a.faultsOf(b) >= 20 && map_b.faultsOf(b) == 0) {
            const fpga::Site site = plan.siteOf(b);
            examples.addRow({"(" + std::to_string(site.y) + "," +
                                 std::to_string(site.x) + ")",
                             std::to_string(map_a.faultsOf(b)),
                             std::to_string(map_b.faultsOf(b))});
            ++listed;
        }
    }
    std::printf("\nhigh-vulnerable on A, clean on B (paper's "
                "BRAM#(116,1) example class):\n");
    examples.print(std::cout);
    writeCsv(examples, "results/fig07_die2die_examples.csv");
    return 0;
}
